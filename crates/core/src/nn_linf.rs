//! `L∞` nearest neighbours with keywords (L∞NN-KW; Corollary 4).
//!
//! Given a point `q`, an integer `t ≥ 1`, and `k` keywords, return `t`
//! matching objects closest to `q` under the `L∞` distance. Corollary
//! 4's algorithm: the `L∞`-ball `B(q, r)` is a `d`-rectangle, so an
//! ORP-KW query with output limit `t` decides "are there ≥ t matches
//! within radius `r`?" in `O(N^{1−1/k}·t^{1/k})` time; binary-searching
//! `r` over the `O(N)` *candidate radii* — per-dimension coordinate
//! differences `|q[i] − e[i]|`, one of which must be the `t`-th NN
//! distance — takes `O(log N)` such tests.

use std::ops::ControlFlow;

use skq_geom::{Point, Rect};
use skq_invidx::Keyword;

use crate::dataset::Dataset;
use crate::error::{validate, SkqError};
use crate::failpoints;
use crate::lc::LcKwIndex;
use crate::orp::OrpKwIndex;
use crate::persist::{self, Persist, SCHEMA_VERSION};
use crate::sink::{CountSink, LimitSink, ResultSink};
use crate::stats::QueryStats;
use crate::telemetry;

/// The `L∞`-ball `B(q, r)` as a rectangle, rounded *outward* by one
/// ulp per side: candidate radii are computed as `|q[i] − x|`, whose
/// rounding need not agree with `q[i] ± r`, and an inward-rounded
/// rectangle could exclude the very boundary object that defines the
/// radius. Outward rounding only admits boundary-adjacent extras, which
/// the final re-ranking by true distance discards.
fn outward_ball(q: &Point, r: f64) -> Rect {
    let lo: Vec<f64> = q.coords().iter().map(|c| (c - r).next_down()).collect();
    let hi: Vec<f64> = q.coords().iter().map(|c| (c + r).next_up()).collect();
    Rect::new(&lo, &hi)
}

/// The rectangle engine behind the threshold queries: the default
/// ORP-KW route (Theorems 1–2) or footnote 3's linear-space LC-KW
/// route (pays an extra `log N` term, saves the `(log log N)^{d−2}`
/// space factor for `d ≥ 3`).
enum RectEngine {
    Orp(OrpKwIndex),
    Lc(LcKwIndex),
}

impl RectEngine {
    fn query_sink<S: ResultSink>(
        &self,
        q: &Rect,
        keywords: &[skq_invidx::Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        match self {
            RectEngine::Orp(i) => i.query_sink(q, keywords, sink, stats),
            RectEngine::Lc(i) => {
                let poly = skq_geom::ConvexPolytope::from_rect(q);
                i.query_sink(poly.halfspaces(), keywords, sink, stats)
            }
        }
    }

    fn space_words(&self) -> usize {
        match self {
            RectEngine::Orp(i) => i.space_words(),
            RectEngine::Lc(i) => i.space_words(),
        }
    }
}

/// The L∞NN-KW index.
///
/// # Example
///
/// ```
/// use skq_core::dataset::Dataset;
/// use skq_core::nn_linf::LinfNnIndex;
/// use skq_geom::Point;
///
/// let data = Dataset::from_parts(vec![
///     (Point::new2(1.0, 0.0), vec![0, 1]),
///     (Point::new2(5.0, 0.0), vec![0, 1]),
///     (Point::new2(2.0, 0.0), vec![0]), // missing keyword 1
/// ]);
/// let index = LinfNnIndex::build(&data, 2);
/// // Nearest matching object to the origin.
/// assert_eq!(index.query(&Point::new2(0.0, 0.0), 1, &[0, 1]), vec![0]);
/// ```
pub struct LinfNnIndex {
    engine: RectEngine,
    /// Per-dimension sorted coordinates — the paper's "d binary search
    /// trees, each created on the coordinates of a different dimension",
    /// used to select candidate radii by rank.
    sorted_coords: Vec<Vec<f64>>,
    points: Vec<Point>,
    dim: usize,
}

impl LinfNnIndex {
    /// Builds the index for exactly-`k`-keyword queries (ORP-KW
    /// threshold engine — Corollary 4 as stated).
    pub fn build(dataset: &Dataset, k: usize) -> Self {
        Self::try_build(dataset, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if `k` is outside `2..=16`.
    pub fn try_build(dataset: &Dataset, k: usize) -> Result<Self, SkqError> {
        failpoints::check("nn_linf::build")?;
        Ok(Self::build_inner(
            dataset,
            RectEngine::Orp(OrpKwIndex::try_build(dataset, k)?),
        ))
    }

    /// The linear-space variant of footnote 3: LC-KW threshold engine,
    /// `O(N)` space in any dimension at the cost of a `log N` factor.
    pub fn build_linear(dataset: &Dataset, k: usize) -> Self {
        Self::try_build_linear(dataset, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build_linear`](Self::build_linear).
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if `k` is outside `2..=16`.
    pub fn try_build_linear(dataset: &Dataset, k: usize) -> Result<Self, SkqError> {
        failpoints::check("nn_linf::build")?;
        Ok(Self::build_inner(
            dataset,
            RectEngine::Lc(LcKwIndex::try_build(dataset, k)?),
        ))
    }

    fn build_inner(dataset: &Dataset, engine: RectEngine) -> Self {
        let _span = skq_obs::Span::enter("nn_linf.build");
        let start = std::time::Instant::now();
        let dim = dataset.dim();
        let mut sorted_coords = Vec::with_capacity(dim);
        for d in 0..dim {
            let mut col: Vec<f64> = dataset.points().iter().map(|p| p.get(d)).collect();
            col.sort_by(f64::total_cmp);
            sorted_coords.push(col);
        }
        let index = Self {
            engine,
            sorted_coords,
            points: dataset.points().to_vec(),
            dim,
        };
        let (nodes, pivots) = match &index.engine {
            RectEngine::Orp(orp) => orp
                .kd_node_summaries()
                .map(|s| (s.len() as u64, s.iter().map(|&(_, _, p, _)| p as u64).sum()))
                .unwrap_or((0, 0)),
            RectEngine::Lc(_) => (0, 0),
        };
        // Engine plus the candidate-radius columns and the point copies.
        let words = index.engine.space_words() + 2 * index.dim * index.points.len();
        telemetry::record_build(
            "nn_linf",
            start.elapsed(),
            nodes,
            pivots,
            (words * 8) as u64,
        );
        index
    }

    /// The number of query keywords the index was built for.
    pub fn k(&self) -> usize {
        match &self.engine {
            RectEngine::Orp(i) => i.k(),
            RectEngine::Lc(i) => i.k(),
        }
    }

    /// Returns up to `t` matching objects nearest to `q` under `L∞`
    /// distance, sorted by `(distance, id)`. Fewer than `t` are
    /// returned only when fewer objects match the keywords at all.
    pub fn query(&self, q: &Point, t: usize, keywords: &[Keyword]) -> Vec<u32> {
        self.query_with_stats(q, t, keywords).0
    }

    /// Like [`query`](Self::query) with aggregate statistics over all
    /// the internal threshold queries.
    pub fn query_with_stats(
        &self,
        q: &Point,
        t: usize,
        keywords: &[Keyword],
    ) -> (Vec<u32>, QueryStats) {
        assert_eq!(q.dim(), self.dim, "query dimension mismatch");
        let mut stats = QueryStats::new();
        if t == 0 {
            return (Vec::new(), stats);
        }

        // Are there t matches at all? Probe with the maximal radius.
        let n = self.points.len();
        let total_candidates = self.dim * n;
        let r_max = self.candidate_by_rank(q, total_candidates - 1);
        if !self.threshold(q, r_max, keywords, t, &mut stats) {
            // Fewer than t matches exist: return all of them.
            let ball = outward_ball(q, r_max);
            let mut all = Vec::new();
            let _ = self
                .engine
                .query_sink(&ball, keywords, &mut all, &mut stats);
            let ranked = self.rank_by_distance(q, all, usize::MAX);
            stats.emitted = ranked.len() as u64;
            return (ranked, stats);
        }

        // Binary search the candidate-radius rank for the minimal radius
        // admitting ≥ t matches.
        let mut lo = 0usize;
        let mut hi = total_candidates - 1;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let r = self.candidate_by_rank(q, mid);
            if self.threshold(q, r, keywords, t, &mut stats) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let r_star = self.candidate_by_rank(q, lo);

        // Collect everything within r* and rank by true distance.
        let ball = outward_ball(q, r_star);
        let mut hits = Vec::new();
        let _ = self
            .engine
            .query_sink(&ball, keywords, &mut hits, &mut stats);
        let ranked = self.rank_by_distance(q, hits, t);

        // Closure pass: re-collect at the t-th hit's actual distance
        // (nudged up a few ulps). This pins down boundary cases where
        // the rectangle arithmetic of the threshold ball and the
        // distance arithmetic of the ranking disagree by an ulp.
        let d_t = self.points[*ranked.last().expect("t >= 1 hits") as usize].linf(q);
        let ball = outward_ball(q, f64::from_bits(d_t.to_bits() + 4));
        let mut hits = Vec::new();
        let _ = self
            .engine
            .query_sink(&ball, keywords, &mut hits, &mut stats);
        let out = self.rank_by_distance(q, hits, t);
        stats.emitted = out.len() as u64;
        (out, stats)
    }

    /// Fallible query: validates the query point and keyword set, then
    /// appends the `t` nearest matching ids to `out` in `(distance,
    /// id)` order.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` on a dimension mismatch, a non-finite
    /// query point, or a keyword set that is not exactly `k` distinct
    /// keywords.
    pub fn try_query_into(
        &self,
        q: &Point,
        t: usize,
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<QueryStats, SkqError> {
        validate::point_query(q, self.dim)?;
        validate::distinct_keywords(keywords, self.k())?;
        let (ids, stats) = self.query_with_stats(q, t, keywords);
        out.extend(ids);
        Ok(stats)
    }

    /// "Are there at least `t` matches within radius `r`?" — the
    /// early-terminating ORP-KW threshold query of Corollary 4, run
    /// through a counting probe so no result vector is ever built.
    fn threshold(
        &self,
        q: &Point,
        r: f64,
        keywords: &[Keyword],
        t: usize,
        stats: &mut QueryStats,
    ) -> bool {
        let ball = outward_ball(q, r);
        let mut probe = LimitSink::new(CountSink::new(), t);
        let _ = self.engine.query_sink(&ball, keywords, &mut probe, stats);
        probe.emitted() >= t as u64
    }

    /// The `rank`-th smallest candidate radius (0-based), i.e. the
    /// `rank`-th smallest value of `|q[i] − x|` over all dimensions `i`
    /// and stored coordinates `x`. Binary search over the (monotone)
    /// bit representation of non-negative `f64`s, counting with the
    /// same `|q[i] − x|` arithmetic used everywhere else, so the result
    /// is an exactly attained candidate value.
    fn candidate_by_rank(&self, q: &Point, rank: usize) -> f64 {
        let mut lo_bits = 0u64;
        let mut hi_bits = f64::INFINITY.to_bits();
        while lo_bits < hi_bits {
            let mid = lo_bits + (hi_bits - lo_bits) / 2;
            let r = f64::from_bits(mid);
            if self.count_candidates_le(q, r) > rank {
                hi_bits = mid;
            } else {
                lo_bits = mid + 1;
            }
        }
        f64::from_bits(lo_bits)
    }

    /// Number of candidate radii `≤ r`.
    fn count_candidates_le(&self, q: &Point, r: f64) -> usize {
        let mut total = 0usize;
        for d in 0..self.dim {
            let col = &self.sorted_coords[d];
            let qc = q.get(d);
            // Coordinates below q: distance qc − x decreases with x.
            let split = col.partition_point(|&x| x < qc);
            let left_far = col[..split].partition_point(|&x| (qc - x).abs() > r);
            total += split - left_far;
            // Coordinates at or above q: distance x − qc increases.
            let right_near = col[split..].partition_point(|&x| (qc - x).abs() <= r);
            total += right_near;
        }
        total
    }

    /// Sorts `ids` by `(L∞ distance to q, id)` and truncates to `t`.
    fn rank_by_distance(&self, q: &Point, mut ids: Vec<u32>, t: usize) -> Vec<u32> {
        ids.sort_unstable_by(|&a, &b| {
            self.points[a as usize]
                .linf(q)
                .total_cmp(&self.points[b as usize].linf(q))
                .then(a.cmp(&b))
        });
        ids.truncate(t);
        ids
    }

    /// Index space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.engine.space_words() + self.dim * self.points.len()
    }

    /// Deep structural validation (`debug-invariants`; DESIGN.md §12):
    /// the candidate-radius columns must be sorted permutations of the
    /// stored coordinates (the binary-search step of Corollary 4 silently
    /// returns wrong neighbors otherwise), and the rectangle engine must
    /// itself validate.
    ///
    /// # Errors
    ///
    /// The first violated invariant, by name.
    #[cfg(feature = "debug-invariants")]
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        use crate::invariants::InvariantViolation as V;
        if self.sorted_coords.len() != self.dim {
            return Err(V::new(
                "nn_linf::sorted_coords",
                format!(
                    "{} coordinate columns for a {}D index",
                    self.sorted_coords.len(),
                    self.dim
                ),
            ));
        }
        for (d, col) in self.sorted_coords.iter().enumerate() {
            if col.len() != self.points.len() {
                return Err(V::new(
                    "nn_linf::sorted_coords",
                    format!(
                        "dimension {d}: column of {} entries for {} points",
                        col.len(),
                        self.points.len()
                    ),
                ));
            }
            if col.windows(2).any(|w| w[0].total_cmp(&w[1]).is_gt()) {
                return Err(V::new(
                    "nn_linf::sorted_coords",
                    format!("dimension {d}: candidate-radius column not sorted"),
                ));
            }
            let mut expected: Vec<f64> = self.points.iter().map(|p| p.get(d)).collect();
            expected.sort_by(f64::total_cmp);
            if col
                .iter()
                .zip(&expected)
                .any(|(a, b)| a.total_cmp(b).is_ne())
            {
                return Err(V::new(
                    "nn_linf::sorted_coords",
                    format!("dimension {d}: column is not a permutation of the stored coordinates"),
                ));
            }
        }
        match &self.engine {
            RectEngine::Orp(i) => i.validate(),
            RectEngine::Lc(i) => i.validate(),
        }
    }
}

/// Engine tag written in the `NN_HEAD` page: the ORP-KW threshold
/// engine. The linear-space LC-KW engine has no snapshot encoding;
/// saving it returns [`SkqError::Store`].
const NN_ENGINE_ORP: u64 = 0;

impl Persist for LinfNnIndex {
    fn to_pages(&self, w: &mut persist::PageWriter) -> Result<(), SkqError> {
        match &self.engine {
            RectEngine::Orp(orp) => {
                let mut head = Vec::new();
                persist::put_uv(&mut head, NN_ENGINE_ORP);
                persist::put_uv(&mut head, self.dim as u64);
                persist::put_uv(&mut head, self.points.len() as u64);
                w.page(persist::kind::NN_HEAD, SCHEMA_VERSION, head);
                // The sorted candidate-radius columns are derived data:
                // the loader re-sorts them from the points, so only the
                // points travel.
                persist::put_point_pages(w, persist::kind::NN_POINTS, &self.points, self.dim);
                orp.to_pages(w)
            }
            RectEngine::Lc(_) => Err(SkqError::Store {
                backend: "save".into(),
                message: "the linear-space LC-KW engine has no snapshot encoding; rebuild it \
                          from the dataset"
                    .into(),
            }),
        }
    }

    fn from_pages(r: &mut persist::PageReader<'_>) -> Result<Self, SkqError> {
        let fail = |detail: String| SkqError::Corrupted {
            section: "nn_linf".into(),
            detail,
        };
        let mut head = r.page(persist::kind::NN_HEAD, SCHEMA_VERSION, "nn_linf")?;
        let engine = head.uv()?;
        let dim = head.usizev()?;
        let n = head.usizev()?;
        head.end()?;
        if engine != NN_ENGINE_ORP {
            return Err(fail(format!("unknown nn_linf engine tag {engine}")));
        }
        if n == 0 {
            return Err(fail("index stores zero points".into()));
        }
        let points = persist::read_point_pages(r, persist::kind::NN_POINTS, "nn_linf", n, dim)?;
        for (i, p) in points.iter().enumerate() {
            for d in 0..dim {
                if !p.get(d).is_finite() {
                    return Err(fail(format!("point {i} has a non-finite coordinate")));
                }
            }
        }
        let orp = OrpKwIndex::from_pages(r)?;
        if orp.dim() != dim {
            return Err(fail(format!(
                "head declares {dim}D, inner index is {}D",
                orp.dim()
            )));
        }
        if orp.kd_num_objects() != Some(n) {
            return Err(fail(format!(
                "head declares {n} points, inner index holds {:?}",
                orp.kd_num_objects()
            )));
        }
        // Rebuild the per-dimension candidate-radius columns exactly as
        // `build_inner` does — deterministic total-order sorts.
        let mut sorted_coords = Vec::with_capacity(dim);
        for d in 0..dim {
            let mut col: Vec<f64> = points.iter().map(|p| p.get(d)).collect();
            col.sort_by(f64::total_cmp);
            sorted_coords.push(col);
        }
        Ok(Self {
            engine: RectEngine::Orp(orp),
            sorted_coords,
            points,
            dim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_dataset(n: usize, dim: usize, vocab: u32, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_parts(
            (0..n)
                .map(|_| {
                    let coords: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
                    let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                        .map(|_| rng.gen_range(0..vocab))
                        .collect();
                    (Point::new(&coords), doc)
                })
                .collect(),
        )
    }

    /// Brute-force t-NN: all matching objects sorted by (L∞, id).
    fn brute(dataset: &Dataset, q: &Point, t: usize, kws: &[Keyword]) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..dataset.len() as u32)
            .filter(|&i| dataset.doc(i as usize).contains_all(kws))
            .collect();
        ids.sort_unstable_by(|&a, &b| {
            dataset
                .point(a as usize)
                .linf(q)
                .total_cmp(&dataset.point(b as usize).linf(q))
                .then(a.cmp(&b))
        });
        ids.truncate(t);
        ids
    }

    #[test]
    fn matches_bruteforce_2d() {
        let dataset = random_dataset(300, 2, 8, 1);
        let index = LinfNnIndex::build(&dataset, 2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..40 {
            let q = Point::new2(rng.gen_range(-60.0..60.0), rng.gen_range(-60.0..60.0));
            let t = rng.gen_range(1..8);
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            let got = index.query(&q, t, &[w1, w2]);
            let expected = brute(&dataset, &q, t, &[w1, w2]);
            // Sets of distances must agree (ties at the boundary may pick
            // different ids only if distances tie — with the (dist, id)
            // order both sides are deterministic).
            assert_eq!(got, expected, "q={q:?} t={t} kws=[{w1},{w2}]");
        }
    }

    #[test]
    fn linear_variant_matches_default_3d() {
        // Footnote 3: the LC-route engine answers identically with
        // linear space (the answer sets must be equal; space is smaller
        // by the dimension-reduction factor).
        let dataset = random_dataset(150, 3, 6, 51);
        let a = LinfNnIndex::build(&dataset, 2);
        let b = LinfNnIndex::build_linear(&dataset, 2);
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..15 {
            let q = Point::new3(
                rng.gen_range(-60.0..60.0),
                rng.gen_range(-60.0..60.0),
                rng.gen_range(-60.0..60.0),
            );
            let t = rng.gen_range(1..5);
            let w1 = rng.gen_range(0..6);
            let w2 = (w1 + 1 + rng.gen_range(0..5)) % 6;
            assert_eq!(a.query(&q, t, &[w1, w2]), b.query(&q, t, &[w1, w2]));
        }
    }

    #[test]
    fn matches_bruteforce_3d() {
        let dataset = random_dataset(200, 3, 6, 11);
        let index = LinfNnIndex::build(&dataset, 2);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..25 {
            let q = Point::new3(
                rng.gen_range(-60.0..60.0),
                rng.gen_range(-60.0..60.0),
                rng.gen_range(-60.0..60.0),
            );
            let t = rng.gen_range(1..6);
            let w1 = rng.gen_range(0..6);
            let w2 = (w1 + 1 + rng.gen_range(0..5)) % 6;
            assert_eq!(
                index.query(&q, t, &[w1, w2]),
                brute(&dataset, &q, t, &[w1, w2])
            );
        }
    }

    #[test]
    fn t_exceeding_matches_returns_all() {
        let dataset = Dataset::from_parts(vec![
            (Point::new2(0.0, 0.0), vec![0, 1]),
            (Point::new2(1.0, 0.0), vec![0, 1]),
            (Point::new2(5.0, 0.0), vec![0]),
        ]);
        let index = LinfNnIndex::build(&dataset, 2);
        let got = index.query(&Point::new2(0.0, 0.0), 10, &[0, 1]);
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn t_zero_is_empty() {
        let dataset = random_dataset(50, 2, 4, 21);
        let index = LinfNnIndex::build(&dataset, 2);
        assert!(index.query(&Point::new2(0.0, 0.0), 0, &[0, 1]).is_empty());
    }

    #[test]
    fn try_surfaces_round_trip_and_validate() {
        let dataset = random_dataset(120, 2, 6, 61);
        let index = LinfNnIndex::try_build(&dataset, 2).unwrap();
        let legacy = LinfNnIndex::build(&dataset, 2);
        let q = Point::new2(1.0, -3.0);
        let mut out = Vec::new();
        index.try_query_into(&q, 5, &[0, 1], &mut out).unwrap();
        assert_eq!(out, legacy.query(&q, 5, &[0, 1]));
        let mut scratch = Vec::new();
        assert!(matches!(
            index.try_query_into(&Point::new1(0.0), 1, &[0, 1], &mut scratch),
            Err(SkqError::InvalidQuery(_))
        ));
        assert!(matches!(
            index.try_query_into(&Point::new2(f64::NAN, 0.0), 1, &[0, 1], &mut scratch),
            Err(SkqError::InvalidQuery(_))
        ));
        assert!(matches!(
            index.try_query_into(&q, 1, &[0], &mut scratch),
            Err(SkqError::InvalidQuery(_))
        ));
        assert!(matches!(
            LinfNnIndex::try_build(&dataset, 17),
            Err(SkqError::InvalidQuery(_))
        ));
        assert!(LinfNnIndex::try_build_linear(&dataset, 2).is_ok());
    }

    #[test]
    fn exact_tie_distances() {
        // Two objects at identical distance; (dist, id) order breaks it.
        let dataset = Dataset::from_parts(vec![
            (Point::new2(2.0, 0.0), vec![0, 1]),
            (Point::new2(-2.0, 0.0), vec![0, 1]),
            (Point::new2(0.0, 7.0), vec![0, 1]),
        ]);
        let index = LinfNnIndex::build(&dataset, 2);
        assert_eq!(index.query(&Point::new2(0.0, 0.0), 1, &[0, 1]), vec![0]);
        assert_eq!(index.query(&Point::new2(0.0, 0.0), 2, &[0, 1]), vec![0, 1]);
    }

    #[test]
    #[cfg(feature = "debug-invariants")]
    fn scrambled_radius_column_names_sorted_coords() {
        let dataset = random_dataset(80, 2, 4, 71);
        let mut index = LinfNnIndex::build(&dataset, 2);
        index.validate().unwrap();
        // Corrupt the rank structure: swap the extremes of one column.
        let last = index.sorted_coords[1].len() - 1;
        index.sorted_coords[1].swap(0, last);
        let err = index.validate().unwrap_err();
        assert_eq!(err.invariant(), "nn_linf::sorted_coords");
    }

    #[test]
    fn candidate_rank_selection_is_exact() {
        let dataset = random_dataset(60, 2, 4, 31);
        let index = LinfNnIndex::build(&dataset, 2);
        let q = Point::new2(3.25, -7.5);
        // All candidate radii, brute force.
        let mut cands: Vec<f64> = Vec::new();
        for d in 0..2 {
            for p in dataset.points() {
                cands.push((q.get(d) - p.get(d)).abs());
            }
        }
        cands.sort_by(f64::total_cmp);
        for rank in [0, 1, 17, 59, cands.len() - 1] {
            assert_eq!(
                index.candidate_by_rank(&q, rank).to_bits(),
                cands[rank].to_bits(),
                "rank {rank}"
            );
        }
    }
}
