//! Dynamic (insert/delete) ORP-KW via the logarithmic method.
//!
//! The paper's indexes are static. ORP-KW, however, is a *decomposable
//! search problem* — the answer over `A ∪ B` is the union of the
//! answers over `A` and `B` — so the classical Bentley–Saxe
//! logarithmic method applies: maintain static indexes over blocks of
//! doubling sizes, insert by "binary-counter carries" that rebuild a
//! prefix of blocks, and query every block. This multiplies query time
//! by `O(log n)` and amortizes insertion to `O(polylog · build/n)` —
//! the standard trade the paper leaves as engineering.
//!
//! Deletions are lazy: a live-handle set filters query output, and the
//! structure is rebuilt from live objects whenever at least half of it
//! is dead, so space stays `O(N_live)` and filtering stays `O(1)` per
//! reported object.

use std::ops::ControlFlow;

use skq_geom::{Point, Rect};
use skq_invidx::Keyword;

use crate::dataset::Dataset;
use crate::error::{validate, SkqError};
use crate::failpoints;
use crate::fastmap::FxHashMap;
use crate::guard::{GuardedSink, QueryGuard};
use crate::orp::OrpKwIndex;
use crate::sink::ResultSink;
use crate::stats::{QueryStats, TruncatedReason};
use crate::telemetry;

/// Handle returned by [`DynamicOrpKw::insert`], used for deletion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectHandle(u64);

impl ObjectHandle {
    /// The handle's stable numeric id — the value persisted in WAL
    /// records and snapshots, re-playable via
    /// [`DynamicOrpKw::try_insert_with_id`].
    pub fn id(self) -> u64 {
        self.0
    }
}

/// Objects buffered before the first block is formed.
const BASE_BLOCK: usize = 128;

struct Block {
    index: OrpKwIndex,
    /// Block-local id → handle.
    handles: Vec<ObjectHandle>,
    /// Retained source data, needed when the block is merged upward.
    source: Vec<(Point, Vec<Keyword>, ObjectHandle)>,
}

/// A dynamic ORP-KW index (insertions and lazy deletions).
///
/// # Example
///
/// ```
/// use skq_core::dynamic::DynamicOrpKw;
/// use skq_geom::{Point, Rect};
///
/// let mut index = DynamicOrpKw::new(2, 2);
/// let a = index.insert(Point::new2(1.0, 1.0), vec![0, 1]);
/// let _b = index.insert(Point::new2(9.0, 9.0), vec![0, 1]);
/// assert_eq!(index.query(&Rect::new(&[0.0, 0.0], &[5.0, 5.0]), &[0, 1]), vec![a]);
/// index.delete(a);
/// assert!(index.query(&Rect::new(&[0.0, 0.0], &[5.0, 5.0]), &[0, 1]).is_empty());
/// ```
pub struct DynamicOrpKw {
    k: usize,
    dim: usize,
    /// `blocks[i]` holds up to `BASE_BLOCK · 2^i` objects.
    blocks: Vec<Option<Block>>,
    /// Insertion buffer, scanned linearly by queries (≤ `BASE_BLOCK`).
    buffer: Vec<(Point, Vec<Keyword>, ObjectHandle)>,
    /// The set of live handles: deletion removes from it, queries
    /// filter against it. `O(live)` space, and — unlike a tombstone
    /// set cleared on rebuild — re-deleting a long-dead handle stays a
    /// correct no-op.
    live_set: FxHashMap<u64, ()>,
    next_handle: u64,
}

impl DynamicOrpKw {
    /// Creates an empty dynamic index for `dim`-dimensional points and
    /// exactly-`k`-keyword queries.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `dim` is unsupported.
    pub fn new(dim: usize, k: usize) -> Self {
        assert!(k >= 2, "k must be at least 2");
        assert!((1..=skq_geom::MAX_DIM).contains(&dim));
        Self {
            k,
            dim,
            blocks: Vec::new(),
            buffer: Vec::new(),
            live_set: FxHashMap::default(),
            next_handle: 0,
        }
    }

    /// The number of live objects.
    pub fn len(&self) -> usize {
        self.live_set.len()
    }

    /// Whether no live objects remain.
    pub fn is_empty(&self) -> bool {
        self.live_set.is_empty()
    }

    /// Inserts an object, returning its handle. Amortized cost is one
    /// static rebuild of `O(log n)` blocks per `n` insertions.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or an empty document.
    // The panic is this wrapper's documented contract; `try_insert` is
    // the fallible surface.
    #[allow(clippy::disallowed_macros)]
    pub fn insert(&mut self, point: Point, keywords: Vec<Keyword>) -> ObjectHandle {
        self.try_insert(point, keywords)
            .unwrap_or_else(|e| panic!("{e}")) // skq-lint: allow(L01) documented panicking wrapper over try_insert
    }

    /// Fallible [`insert`](Self::insert). If the amortized block
    /// rebuild fails (e.g. an injected fail point), the insertion is
    /// rolled back and the index is left exactly as it was — no block
    /// is lost and subsequent operations behave normally.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidDataset` on a dimension mismatch, an empty
    /// document, or non-finite coordinates; any block-build error is
    /// propagated after rollback.
    pub fn try_insert(
        &mut self,
        point: Point,
        keywords: Vec<Keyword>,
    ) -> Result<ObjectHandle, SkqError> {
        if point.dim() != self.dim {
            return Err(SkqError::InvalidDataset(format!(
                "point dimension mismatch: point is {}-dimensional, index is {}-dimensional",
                point.dim(),
                self.dim
            )));
        }
        if keywords.is_empty() {
            return Err(SkqError::InvalidDataset(
                "documents must be non-empty".into(),
            ));
        }
        for i in 0..point.dim() {
            if !point.get(i).is_finite() {
                return Err(SkqError::InvalidDataset(format!(
                    "coordinates must be finite: inserted point has {} in dimension {i}",
                    point.get(i)
                )));
            }
        }
        let handle = ObjectHandle(self.next_handle);
        self.next_handle += 1;
        self.live_set.insert(handle.0, ());
        self.buffer.push((point, keywords, handle));
        if self.buffer.len() >= BASE_BLOCK {
            if let Err(e) = self.try_carry() {
                // Roll back this insertion: the carry left all state
                // untouched, so popping the buffered item restores the
                // exact pre-insert index.
                self.buffer.pop();
                self.live_set.remove(&handle.0);
                self.next_handle -= 1;
                return Err(e);
            }
        }
        Ok(handle)
    }

    /// Inserts an object under a caller-chosen id. Ids must be fresh:
    /// inserting under an id that was ever allocated (by either insert
    /// surface) is rejected, because the handle may still be referenced
    /// by the live-set or by a deleted-object tombstone check.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if `id` duplicates an already-allocated
    /// handle; otherwise the [`try_insert`](Self::try_insert) errors.
    pub fn try_insert_with_id(
        &mut self,
        id: u64,
        point: Point,
        keywords: Vec<Keyword>,
    ) -> Result<ObjectHandle, SkqError> {
        if id < self.next_handle {
            return Err(SkqError::InvalidQuery(format!(
                "duplicate object id {id}: ids up to {} are already allocated",
                self.next_handle - 1
            )));
        }
        let saved = self.next_handle;
        self.next_handle = id;
        match self.try_insert(point, keywords) {
            Ok(h) => Ok(h),
            Err(e) => {
                self.next_handle = saved;
                Err(e)
            }
        }
    }

    /// Deletes an object by numeric id — the by-id twin of
    /// [`delete`](Self::delete), used when the caller holds a
    /// persisted id (WAL replay, crash-recovery rollback) rather than
    /// a live [`ObjectHandle`]. Returns whether the object was live;
    /// deleting an unknown or already-dead id is a `false` no-op.
    pub fn delete_by_id(&mut self, id: u64) -> bool {
        self.delete(ObjectHandle(id))
    }

    /// Deletes an object by handle. Returns whether it was live.
    pub fn delete(&mut self, handle: ObjectHandle) -> bool {
        if self.live_set.remove(&handle.0).is_none() {
            return false;
        }
        // Global rebuild once at least half the stored objects are dead.
        let stored: usize = self.stored_count();
        if stored >= 2 * BASE_BLOCK && self.live_set.len() * 2 <= stored {
            self.rebuild();
        }
        true
    }

    fn stored_count(&self) -> usize {
        self.buffer.len()
            + self
                .blocks
                .iter()
                .flatten()
                .map(|b| b.source.len())
                .sum::<usize>()
    }

    /// Binary-counter carry: merge the buffer with the maximal run of
    /// occupied low blocks into the first free slot. The merge pool is
    /// assembled by clone and the new block built *before* any state is
    /// modified, so a build failure leaves the index untouched.
    fn try_carry(&mut self) -> Result<(), SkqError> {
        let mut pool: Vec<(Point, Vec<Keyword>, ObjectHandle)> = self.buffer.clone();
        let mut slot = 0usize;
        while slot < self.blocks.len() {
            match &self.blocks[slot] {
                None => break,
                Some(b) => {
                    pool.extend(b.source.iter().cloned());
                    slot += 1;
                }
            }
        }
        let block = Self::try_build_block(&pool, self.k)?;
        // Commit: only after the build succeeded.
        self.buffer.clear();
        if slot == self.blocks.len() {
            self.blocks.push(None);
        }
        for s in 0..slot {
            self.blocks[s] = None;
        }
        self.blocks[slot] = Some(block);
        Ok(())
    }

    /// Rebuilds everything from live objects only. If the block build
    /// fails (e.g. an injected fail point), the live objects are parked
    /// in the insertion buffer instead — queries fall back to the
    /// linear scan, staying correct in a degraded (un-indexed) mode
    /// until the next successful carry re-indexes them.
    fn rebuild(&mut self) {
        let mut pool: Vec<(Point, Vec<Keyword>, ObjectHandle)> = std::mem::take(&mut self.buffer);
        for b in self.blocks.iter_mut() {
            if let Some(b) = b.take() {
                pool.extend(b.source);
            }
        }
        pool.retain(|(_, _, h)| self.live_set.contains_key(&h.0));
        self.blocks.clear();
        if pool.len() < BASE_BLOCK {
            self.buffer = pool;
            return;
        }
        // Place everything in the appropriate single block.
        let slot = pool
            .len()
            .div_ceil(BASE_BLOCK)
            .next_power_of_two()
            .trailing_zeros() as usize;
        match Self::try_build_block(&pool, self.k) {
            Ok(block) => {
                self.blocks.resize_with(slot + 1, || None);
                self.blocks[slot] = Some(block);
            }
            Err(_) => self.buffer = pool,
        }
    }

    fn try_build_block(
        pool: &[(Point, Vec<Keyword>, ObjectHandle)],
        k: usize,
    ) -> Result<Block, SkqError> {
        failpoints::check("dynamic::build_block")?;
        let dataset =
            Dataset::try_from_parts(pool.iter().map(|(p, kws, _)| (*p, kws.clone())).collect())?;
        Ok(Block {
            index: OrpKwIndex::try_build(&dataset, k)?,
            handles: pool.iter().map(|&(_, _, h)| h).collect(),
            source: pool.to_vec(),
        })
    }

    /// Reports the handles of live objects in `q` whose documents
    /// contain all `keywords` (exactly `k` distinct).
    pub fn query(&self, q: &Rect, keywords: &[Keyword]) -> Vec<ObjectHandle> {
        self.query_with_stats(q, keywords).0
    }

    /// Like [`query`](Self::query) with aggregated statistics.
    pub fn query_with_stats(
        &self,
        q: &Rect,
        keywords: &[Keyword],
    ) -> (Vec<ObjectHandle>, QueryStats) {
        self.query_limited(q, keywords, usize::MAX)
    }

    /// Like [`query`](Self::query), stopping after `limit` live
    /// matches. Each static block streams its hits through a
    /// handle-translating sink (no per-block staging vector), so the
    /// early stop propagates into every block traversal.
    pub fn query_limited(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        limit: usize,
    ) -> (Vec<ObjectHandle>, QueryStats) {
        self.query_impl(q, keywords, limit, &QueryGuard::default())
    }

    /// Fallible query: validates the rectangle and the keyword-count
    /// contract up front, then reports like [`query`](Self::query),
    /// appending the live matching handles to `out`.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` on a dimension mismatch, NaN bounds, or
    /// a wrong number of distinct keywords.
    pub fn try_query_into(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        out: &mut Vec<ObjectHandle>,
    ) -> Result<QueryStats, SkqError> {
        validate::rect_query(q, self.dim)?;
        validate::distinct_keywords(keywords, self.k)?;
        let (handles, stats) = self.query_with_stats(q, keywords);
        out.extend(handles);
        Ok(stats)
    }

    /// Guarded query: like [`query_with_stats`](Self::query_with_stats)
    /// but subject to `guard`'s deadline, cancellation token, and
    /// result budget. When the guard trips, the partial results
    /// gathered so far are returned and
    /// `QueryStats::truncated_reason` records why.
    pub fn query_guarded(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        guard: &QueryGuard,
    ) -> (Vec<ObjectHandle>, QueryStats) {
        self.query_impl(q, keywords, usize::MAX, guard)
    }

    fn query_impl(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        limit: usize,
        guard: &QueryGuard,
    ) -> (Vec<ObjectHandle>, QueryStats) {
        assert_eq!(q.dim(), self.dim, "query dimension mismatch");
        let span = skq_obs::Span::enter("orp.dynamic_query");
        let mut kws = keywords.to_vec();
        kws.sort_unstable();
        kws.dedup();
        assert_eq!(kws.len(), self.k, "need exactly k distinct keywords");
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        let mut truncated = false;
        let mut reason: Option<TruncatedReason> = None;
        for block in self.blocks.iter().flatten() {
            // The guard is also consulted per emission inside the
            // traversal; this boundary check catches deadlines that
            // expire inside match-free subtrees.
            if let Err(e) = guard.check() {
                reason = reason.or(Some(Self::trip(&e)));
                break;
            }
            let mut s = QueryStats::new();
            let mut handle_sink = HandleSink {
                handles: &block.handles,
                live: &self.live_set,
                out: &mut out,
                limit,
                hit_limit: false,
            };
            let (flow, sink_reason) = {
                let mut sink = GuardedSink::new(&mut handle_sink, guard);
                let flow = block.index.query_sink(q, &kws, &mut sink, &mut s);
                (flow, sink.truncated_reason())
            };
            reason = reason.or(sink_reason);
            truncated |= handle_sink.hit_limit;
            stats.absorb(&s);
            if flow.is_break() {
                break;
            }
        }
        if !truncated && reason.is_none() {
            match guard.check() {
                Err(e) => reason = Some(Self::trip(&e)),
                Ok(()) => {
                    let budget = guard.max_results().unwrap_or(u64::MAX);
                    for (p, doc_kws, h) in &self.buffer {
                        stats.pivot_scans += 1;
                        if self.live_set.contains_key(&h.0)
                            && q.contains(p)
                            && kws.iter().all(|w| doc_kws.contains(w))
                        {
                            if out.len() >= limit {
                                truncated = true;
                                break;
                            }
                            if out.len() as u64 >= budget {
                                reason = Some(TruncatedReason::Limit);
                                break;
                            }
                            stats.reported += 1;
                            out.push(*h);
                        }
                    }
                }
            }
        }
        stats.emitted = out.len() as u64;
        stats.truncated |= truncated || reason.is_some();
        stats.truncated_reason = reason.or(if truncated {
            Some(TruncatedReason::Limit)
        } else {
            None
        });
        telemetry::record_query("orp_dynamic", self.k, &stats, span.elapsed());
        (out, stats)
    }

    /// Maps a guard trip to its truncation reason, bumping the matching
    /// counter (mirrors `GuardedSink`'s accounting for trips that are
    /// detected at block boundaries rather than per emission).
    fn trip(e: &SkqError) -> TruncatedReason {
        match e {
            SkqError::Cancelled => {
                skq_obs::global().counter("skq_query_cancelled", &[]).inc();
                TruncatedReason::Cancelled
            }
            _ => {
                skq_obs::global()
                    .counter("skq_query_deadline_exceeded", &[])
                    .inc();
                TruncatedReason::DeadlineExceeded
            }
        }
    }

    /// The dimensionality this index was created with.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The exact keyword count (`k`) this index answers.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The handle-allocation watermark: the id the next plain
    /// [`insert`](Self::insert) would receive. Every id below it has
    /// been allocated (or burned) already.
    pub fn next_id(&self) -> u64 {
        self.next_handle
    }

    /// Whether the object with this id is currently live.
    pub fn contains(&self, id: u64) -> bool {
        self.live_set.contains_key(&id)
    }

    /// Every live object as `(id, point, keywords)`, sorted by id —
    /// the deterministic export the recovery supervisor builds a
    /// static suite from.
    pub fn live_objects(&self) -> Vec<(u64, Point, Vec<Keyword>)> {
        let mut out: Vec<(u64, Point, Vec<Keyword>)> = self
            .buffer
            .iter()
            .chain(self.blocks.iter().flatten().flat_map(|b| b.source.iter()))
            .filter(|(_, _, h)| self.live_set.contains_key(&h.0))
            .map(|(p, kws, h)| (h.0, *p, kws.clone()))
            .collect();
        out.sort_by_key(|&(id, _, _)| id);
        out
    }

    /// Number of static blocks currently alive (the `O(log n)` factor).
    pub fn num_blocks(&self) -> usize {
        self.blocks.iter().flatten().count()
    }

    /// Approximate space in 64-bit words.
    pub fn space_words(&self) -> usize {
        let blocks: usize = self
            .blocks
            .iter()
            .flatten()
            .map(|b| b.index.space_words() + b.source.len() * (self.dim + 4))
            .sum();
        blocks + self.buffer.len() * (self.dim + 4) + self.live_set.len() * 2
    }

    /// Deep structural validation (`debug-invariants`; DESIGN.md §12):
    /// re-derives the logarithmic-method bookkeeping — buffer and block
    /// capacities, handle/source alignment per block, global handle
    /// uniqueness, and that every live handle is actually stored — then
    /// validates each block's static ORP-KW index.
    ///
    /// # Errors
    ///
    /// The first violated invariant, by name.
    #[cfg(feature = "debug-invariants")]
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        use crate::invariants::InvariantViolation as V;
        // After a failed rebuild the whole pool parks in the buffer with
        // every block slot empty (degraded mode) — only flag an oversized
        // buffer when an indexed block coexists with it.
        if self.buffer.len() > BASE_BLOCK && self.blocks.iter().any(Option::is_some) {
            return Err(V::new(
                "dynamic::buffer_bound",
                format!(
                    "insertion buffer holds {} objects (cap {BASE_BLOCK}) alongside built blocks",
                    self.buffer.len()
                ),
            ));
        }
        let mut seen: FxHashMap<u64, ()> = FxHashMap::default();
        let mut record = |h: ObjectHandle| -> Result<(), V> {
            if seen.insert(h.0, ()).is_some() {
                return Err(V::new(
                    "dynamic::handle_unique",
                    format!("handle {} stored twice", h.0),
                ));
            }
            Ok(())
        };
        for &(_, _, h) in &self.buffer {
            record(h)?;
        }
        for (slot, block) in self.blocks.iter().enumerate() {
            let Some(block) = block else { continue };
            let cap = BASE_BLOCK << slot;
            if block.source.len() > cap {
                return Err(V::new(
                    "dynamic::carry_bound",
                    format!(
                        "block {slot} holds {} objects, capacity {cap}",
                        block.source.len()
                    ),
                ));
            }
            if block.handles.len() != block.source.len()
                || block
                    .handles
                    .iter()
                    .zip(&block.source)
                    .any(|(&h, &(_, _, sh))| h != sh)
            {
                return Err(V::new(
                    "dynamic::handle_alignment",
                    format!("block {slot}: id→handle map disagrees with retained source"),
                ));
            }
            for &h in &block.handles {
                record(h)?;
            }
            block.index.validate()?;
        }
        if let Some(&lost) = self.live_set.keys().find(|h| !seen.contains_key(h)) {
            return Err(V::new(
                "dynamic::live_handles",
                format!("live handle {lost} is stored in no block or buffer"),
            ));
        }
        Ok(())
    }
}

/// Translates block-local ids to handles, filters dead objects, and
/// enforces the cross-block output limit — all inside the block's own
/// traversal, so an early stop saves real work.
struct HandleSink<'a> {
    handles: &'a [ObjectHandle],
    live: &'a FxHashMap<u64, ()>,
    out: &'a mut Vec<ObjectHandle>,
    limit: usize,
    hit_limit: bool,
}

impl ResultSink for HandleSink<'_> {
    fn emit(&mut self, id: u32) -> ControlFlow<()> {
        let h = self.handles[id as usize];
        if !self.live.contains_key(&h.0) {
            return ControlFlow::Continue(());
        }
        if self.out.len() >= self.limit {
            self.hit_limit = true;
            return ControlFlow::Break(());
        }
        self.out.push(h);
        if self.out.len() >= self.limit {
            self.hit_limit = true;
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    }
    fn emitted(&self) -> u64 {
        self.out.len() as u64
    }
    fn truncated(&self) -> bool {
        self.hit_limit
    }
    fn is_full(&self) -> bool {
        self.out.len() >= self.limit
    }
}

// ------------------------------------------------------------ persist

use crate::persist::{self, Persist, SCHEMA_VERSION};

/// Objects per `DYN_OBJECTS` page.
const DYN_OBJECTS_PER_PAGE: usize = 4096;

fn dyn_corrupt(detail: impl Into<String>) -> SkqError {
    SkqError::Corrupted {
        section: "dynamic".to_string(),
        detail: detail.into(),
    }
}

/// Encodes `entries` (with their live flags) into `DYN_OBJECTS` pages.
fn put_object_pages(
    w: &mut persist::PageWriter,
    entries: &[(Point, Vec<Keyword>, ObjectHandle)],
    live: &FxHashMap<u64, ()>,
    dim: usize,
) {
    for chunk in entries.chunks(DYN_OBJECTS_PER_PAGE) {
        let mut buf = Vec::new();
        for (p, kws, h) in chunk {
            persist::put_uv(&mut buf, h.0);
            persist::put_uv(&mut buf, u64::from(live.contains_key(&h.0)));
            for i in 0..dim {
                persist::put_f64(&mut buf, p.get(i));
            }
            persist::put_uv(&mut buf, kws.len() as u64);
            for &kw in kws {
                persist::put_uv(&mut buf, u64::from(kw));
            }
        }
        w.page(persist::kind::DYN_OBJECTS, SCHEMA_VERSION, buf);
    }
}

/// One decoded snapshot object: geometry, document, handle, live flag.
type SnapshotObject = (Point, Vec<Keyword>, ObjectHandle, bool);

/// Decodes `n` objects written by [`put_object_pages`], returning each
/// with its live flag. Geometry and document contracts are re-checked
/// exactly as [`DynamicOrpKw::try_insert`] enforces them.
fn read_object_pages(
    r: &mut persist::PageReader<'_>,
    n: usize,
    dim: usize,
) -> Result<Vec<SnapshotObject>, SkqError> {
    let mut out = Vec::with_capacity(n.min(1 << 20));
    let mut coords = [0.0f64; skq_geom::MAX_DIM];
    let mut remaining = n;
    while remaining > 0 {
        let mut d = r.page(persist::kind::DYN_OBJECTS, SCHEMA_VERSION, "dynamic")?;
        let in_page = remaining.min(DYN_OBJECTS_PER_PAGE);
        for _ in 0..in_page {
            let id = d.uv()?;
            let live = match d.uv()? {
                0 => false,
                1 => true,
                other => return Err(dyn_corrupt(format!("live flag {other} is not 0/1"))),
            };
            for c in coords.iter_mut().take(dim) {
                *c = d.f64()?;
                if !c.is_finite() {
                    return Err(dyn_corrupt(format!("non-finite coordinate {c}")));
                }
            }
            let kw_count = d.len(1)?;
            if kw_count == 0 {
                return Err(dyn_corrupt(format!("object {id} has an empty document")));
            }
            let mut kws = Vec::with_capacity(kw_count);
            for _ in 0..kw_count {
                kws.push(d.u32v()?);
            }
            out.push((Point::new(&coords[..dim]), kws, ObjectHandle(id), live));
        }
        d.end()?;
        remaining -= in_page;
    }
    Ok(out)
}

/// Snapshot layout (DESIGN.md §15/§16): one `DYN_HEAD` page (`k`,
/// `dim`, handle watermark, buffer length, slot occupancy with
/// per-occupied-slot source lengths), `DYN_OBJECTS` pages for the
/// insertion buffer, then — per occupied slot, ascending — that
/// block's `DYN_OBJECTS` pages followed by its static
/// [`OrpKwIndex`] pages. Dead objects persist with a cleared live
/// flag, so the lazy-deletion state round-trips exactly: a loaded
/// index resumes with the same blocks, the same tombstones, and the
/// same rebuild trigger point as the one that was saved.
impl Persist for DynamicOrpKw {
    fn to_pages(&self, w: &mut persist::PageWriter) -> Result<(), SkqError> {
        let mut head = Vec::new();
        persist::put_uv(&mut head, self.k as u64);
        persist::put_uv(&mut head, self.dim as u64);
        persist::put_uv(&mut head, self.next_handle);
        persist::put_uv(&mut head, self.buffer.len() as u64);
        persist::put_uv(&mut head, self.blocks.len() as u64);
        for slot in &self.blocks {
            match slot {
                None => persist::put_uv(&mut head, 0),
                Some(b) => {
                    persist::put_uv(&mut head, 1);
                    persist::put_uv(&mut head, b.source.len() as u64);
                }
            }
        }
        w.page(persist::kind::DYN_HEAD, SCHEMA_VERSION, head);
        put_object_pages(w, &self.buffer, &self.live_set, self.dim);
        for block in self.blocks.iter().flatten() {
            put_object_pages(w, &block.source, &self.live_set, self.dim);
            block.index.to_pages(w)?;
        }
        Ok(())
    }

    fn from_pages(r: &mut persist::PageReader<'_>) -> Result<Self, SkqError> {
        let mut head = r.page(persist::kind::DYN_HEAD, SCHEMA_VERSION, "dynamic")?;
        let k = head.usizev()?;
        let dim = head.usizev()?;
        let next_handle = head.uv()?;
        let buffer_len = head.usizev()?;
        let num_slots = head.len(1)?;
        if !(2..=16).contains(&k) {
            return Err(dyn_corrupt(format!("implausible k {k}")));
        }
        if !(1..=skq_geom::MAX_DIM).contains(&dim) {
            return Err(dyn_corrupt(format!(
                "dimensionality {dim} outside 1..={}",
                skq_geom::MAX_DIM
            )));
        }
        if num_slots > 64 {
            return Err(dyn_corrupt(format!("implausible slot count {num_slots}")));
        }
        let mut slot_lens: Vec<Option<usize>> = Vec::with_capacity(num_slots);
        for slot in 0..num_slots {
            match head.uv()? {
                0 => slot_lens.push(None),
                1 => {
                    let len = head.usizev()?;
                    let cap = BASE_BLOCK.checked_shl(slot as u32).unwrap_or(usize::MAX);
                    if len == 0 || len > cap {
                        return Err(dyn_corrupt(format!(
                            "block {slot} declares {len} objects, capacity {cap}"
                        )));
                    }
                    slot_lens.push(Some(len));
                }
                other => return Err(dyn_corrupt(format!("slot flag {other} is not 0/1"))),
            }
        }
        head.end()?;

        let mut live_set: FxHashMap<u64, ()> = FxHashMap::default();
        let mut seen: FxHashMap<u64, ()> = FxHashMap::default();
        let mut admit =
            |entries: &[(Point, Vec<Keyword>, ObjectHandle, bool)]| -> Result<(), SkqError> {
                for &(_, _, h, live) in entries {
                    if h.0 >= next_handle {
                        return Err(dyn_corrupt(format!(
                            "handle {} at or above the watermark {next_handle}",
                            h.0
                        )));
                    }
                    if seen.insert(h.0, ()).is_some() {
                        return Err(dyn_corrupt(format!("handle {} stored twice", h.0)));
                    }
                    if live {
                        live_set.insert(h.0, ());
                    }
                }
                Ok(())
            };

        let buffer_entries = read_object_pages(r, buffer_len, dim)?;
        admit(&buffer_entries)?;
        let mut blocks: Vec<Option<Block>> = Vec::with_capacity(num_slots);
        for (slot, len) in slot_lens.iter().enumerate() {
            let Some(len) = len else {
                blocks.push(None);
                continue;
            };
            let entries = read_object_pages(r, *len, dim)?;
            admit(&entries)?;
            let index = OrpKwIndex::from_pages(r)?;
            if index.k() != k {
                return Err(dyn_corrupt(format!(
                    "block {slot} index declares k = {}, expected {k}",
                    index.k()
                )));
            }
            if index.dim() != dim {
                return Err(dyn_corrupt(format!(
                    "block {slot} index is {}D, expected {dim}D",
                    index.dim()
                )));
            }
            if index.kd_num_objects() != Some(*len) {
                return Err(dyn_corrupt(format!(
                    "block {slot} index covers {:?} objects, source holds {len}",
                    index.kd_num_objects()
                )));
            }
            let source: Vec<(Point, Vec<Keyword>, ObjectHandle)> = entries
                .into_iter()
                .map(|(p, kws, h, _)| (p, kws, h))
                .collect();
            blocks.push(Some(Block {
                index,
                handles: source.iter().map(|&(_, _, h)| h).collect(),
                source,
            }));
        }
        Ok(Self {
            k,
            dim,
            blocks,
            buffer: buffer_entries
                .into_iter()
                .map(|(p, kws, h, _)| (p, kws, h))
                .collect(),
            live_set,
            next_handle,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::collections::HashMap;

    /// Naive mirror for differential testing.
    struct Mirror {
        objects: HashMap<u64, (Point, Vec<Keyword>)>,
    }

    impl Mirror {
        fn query(&self, q: &Rect, kws: &[Keyword]) -> Vec<ObjectHandle> {
            let mut out: Vec<ObjectHandle> = self
                .objects
                .iter()
                .filter(|(_, (p, doc))| q.contains(p) && kws.iter().all(|w| doc.contains(w)))
                .map(|(&h, _)| ObjectHandle(h))
                .collect();
            out.sort();
            out
        }
    }

    #[test]
    fn inserts_then_queries() {
        let mut idx = DynamicOrpKw::new(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut mirror = Mirror {
            objects: HashMap::new(),
        };
        for _ in 0..700 {
            let p = Point::new2(rng.gen_range(0..50) as f64, rng.gen_range(0..50) as f64);
            let doc: Vec<Keyword> = (0..rng.gen_range(1..4))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let h = idx.insert(p, doc.clone());
            mirror.objects.insert(h.0, (p, doc));
        }
        assert!(idx.num_blocks() >= 1);
        for _ in 0..40 {
            let x: f64 = rng.gen_range(0..50) as f64;
            let y: f64 = rng.gen_range(0..50) as f64;
            let q = Rect::new(&[x, y], &[x + 15.0, y + 15.0]);
            let w1 = rng.gen_range(0..6);
            let w2 = (w1 + 1 + rng.gen_range(0..5)) % 6;
            let mut got = idx.query(&q, &[w1, w2]);
            got.sort();
            assert_eq!(got, mirror.query(&q, &[w1, w2]));
        }
    }

    #[test]
    fn mixed_inserts_deletes_queries() {
        let mut idx = DynamicOrpKw::new(2, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut mirror = Mirror {
            objects: HashMap::new(),
        };
        let mut handles: Vec<ObjectHandle> = Vec::new();
        for step in 0..2_000 {
            let action = rng.gen_range(0..10);
            if action < 6 || handles.is_empty() {
                let p = Point::new2(rng.gen_range(0..40) as f64, rng.gen_range(0..40) as f64);
                let doc: Vec<Keyword> = (0..rng.gen_range(1..4))
                    .map(|_| rng.gen_range(0..5))
                    .collect();
                let h = idx.insert(p, doc.clone());
                mirror.objects.insert(h.0, (p, doc));
                handles.push(h);
            } else if action < 9 {
                let i = rng.gen_range(0..handles.len());
                let h = handles.swap_remove(i);
                let was_live = mirror.objects.remove(&h.0).is_some();
                assert_eq!(idx.delete(h), was_live);
            } else {
                let x: f64 = rng.gen_range(0..40) as f64;
                let y: f64 = rng.gen_range(0..40) as f64;
                let q = Rect::new(&[x, y], &[x + 12.0, y + 12.0]);
                let w1 = rng.gen_range(0..5);
                let w2 = (w1 + 1 + rng.gen_range(0..4)) % 5;
                let mut got = idx.query(&q, &[w1, w2]);
                got.sort();
                assert_eq!(got, mirror.query(&q, &[w1, w2]), "step {step}");
            }
            assert_eq!(idx.len(), mirror.objects.len());
        }
    }

    #[test]
    fn limited_query_returns_live_subset() {
        let mut idx = DynamicOrpKw::new(2, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let mut handles = Vec::new();
        for _ in 0..600 {
            let p = Point::new2(rng.gen_range(0..30) as f64, rng.gen_range(0..30) as f64);
            handles.push(idx.insert(p, vec![rng.gen_range(0..3), 3]));
        }
        // Delete some so the live filter is exercised under the limit.
        for h in handles.iter().step_by(5) {
            idx.delete(*h);
        }
        let q = Rect::full(2);
        let full = idx.query(&q, &[0, 3]);
        assert!(full.len() > 7);
        let (limited, stats) = idx.query_limited(&q, &[0, 3], 7);
        assert_eq!(limited.len(), 7);
        assert_eq!(stats.emitted, 7);
        assert!(stats.truncated);
        assert!(limited.iter().all(|h| full.contains(h)));
        let (unlimited, stats) = idx.query_limited(&q, &[0, 3], usize::MAX);
        assert_eq!(unlimited.len(), full.len());
        assert!(!stats.truncated);
    }

    #[test]
    fn double_delete_is_noop() {
        let mut idx = DynamicOrpKw::new(1, 2);
        let h = idx.insert(Point::new1(0.0), vec![0, 1]);
        assert!(idx.delete(h));
        assert!(!idx.delete(h));
        assert!(idx.is_empty());
        assert!(idx.query(&Rect::full(1), &[0, 1]).is_empty());
    }

    #[test]
    fn duplicate_id_insertion_rejected() {
        let mut idx = DynamicOrpKw::new(2, 2);
        let a = idx
            .try_insert_with_id(5, Point::new2(1.0, 1.0), vec![0, 1])
            .unwrap();
        assert_eq!(a, ObjectHandle(5));
        // Any id at or below the allocation watermark is a duplicate.
        for dup in [0, 4, 5] {
            assert!(matches!(
                idx.try_insert_with_id(dup, Point::new2(2.0, 2.0), vec![0, 1]),
                Err(SkqError::InvalidQuery(_))
            ));
        }
        // The failed inserts left no trace.
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.query(&Rect::full(2), &[0, 1]), vec![a]);
        // Fresh ids still work, and plain inserts continue above them.
        let b = idx
            .try_insert_with_id(9, Point::new2(3.0, 3.0), vec![0, 1])
            .unwrap();
        assert_eq!(b, ObjectHandle(9));
        let c = idx.insert(Point::new2(4.0, 4.0), vec![0, 1]);
        assert_eq!(c, ObjectHandle(10));
    }

    #[test]
    fn try_insert_validates_input() {
        let mut idx = DynamicOrpKw::new(2, 2);
        assert!(matches!(
            idx.try_insert(Point::new1(0.0), vec![0]),
            Err(SkqError::InvalidDataset(_))
        ));
        assert!(matches!(
            idx.try_insert(Point::new2(0.0, 0.0), vec![]),
            Err(SkqError::InvalidDataset(_))
        ));
        assert!(matches!(
            idx.try_insert(Point::new2(f64::NAN, 0.0), vec![0]),
            Err(SkqError::InvalidDataset(_))
        ));
        assert!(idx.is_empty());
    }

    #[test]
    fn guarded_query_respects_budget_and_cancel() {
        use crate::guard::{CancelToken, QueryGuard};
        use crate::stats::TruncatedReason;
        let mut idx = DynamicOrpKw::new(2, 2);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let p = Point::new2(rng.gen_range(0..30) as f64, rng.gen_range(0..30) as f64);
            idx.insert(p, vec![rng.gen_range(0..3), 3]);
        }
        let q = Rect::full(2);
        let full = idx.query(&q, &[0, 3]);
        assert!(full.len() > 5);
        let guard = QueryGuard::new().with_max_results(5);
        let (limited, stats) = idx.query_guarded(&q, &[0, 3], &guard);
        assert_eq!(limited.len(), 5);
        assert_eq!(stats.truncated_reason, Some(TruncatedReason::Limit));
        assert!(limited.iter().all(|h| full.contains(h)));
        // A pre-cancelled token yields no results, with the reason set.
        let token = CancelToken::new();
        token.cancel();
        let guard = QueryGuard::new().with_cancel(token);
        let (cancelled, stats) = idx.query_guarded(&q, &[0, 3], &guard);
        assert!(cancelled.is_empty());
        assert_eq!(stats.truncated_reason, Some(TruncatedReason::Cancelled));
    }

    #[test]
    fn block_structure_is_logarithmic() {
        let mut idx = DynamicOrpKw::new(2, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let p = Point::new2(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            idx.insert(p, vec![rng.gen_range(0..8), 8]);
        }
        // 5000 / 128 ≈ 39 base blocks → at most ~6 block slots occupied.
        assert!(idx.num_blocks() <= 7, "{} blocks", idx.num_blocks());
    }

    #[test]
    fn heavy_deletion_triggers_compaction() {
        let mut idx = DynamicOrpKw::new(2, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let mut handles = Vec::new();
        for _ in 0..2_000 {
            let p = Point::new2(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            handles.push(idx.insert(p, vec![rng.gen_range(0..4), 4]));
        }
        let before = idx.space_words();
        for h in handles.drain(..1900) {
            idx.delete(h);
        }
        assert_eq!(idx.len(), 100);
        assert!(
            idx.space_words() < before / 4,
            "space did not shrink: {} -> {}",
            before,
            idx.space_words()
        );
        // Survivors still queryable.
        assert_eq!(
            idx.query(&Rect::full(2), &[0, 4]).len()
                + idx.query(&Rect::full(2), &[1, 4]).len()
                + idx.query(&Rect::full(2), &[2, 4]).len()
                + idx.query(&Rect::full(2), &[3, 4]).len(),
            100
        );
    }

    #[test]
    fn persist_round_trips_blocks_buffer_and_tombstones() {
        let mut idx = DynamicOrpKw::new(2, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let mut handles = Vec::new();
        for _ in 0..700 {
            let p = Point::new2(rng.gen_range(0..50) as f64, rng.gen_range(0..50) as f64);
            handles.push(idx.insert(p, vec![rng.gen_range(0..5), 5]));
        }
        // Delete a few (below the rebuild threshold) so dead objects
        // and the live-set round-trip too.
        for h in handles.iter().step_by(9).take(40) {
            idx.delete(*h);
        }
        let bytes = idx.to_bytes().unwrap();
        assert_eq!(bytes, idx.to_bytes().unwrap(), "encoding not deterministic");
        let loaded = DynamicOrpKw::try_from_bytes(&bytes).unwrap();
        assert_eq!(loaded.len(), idx.len());
        assert_eq!(loaded.next_id(), idx.next_id());
        assert_eq!(loaded.num_blocks(), idx.num_blocks());
        assert_eq!(loaded.live_objects(), idx.live_objects());
        for w1 in 0..5u32 {
            let q = Rect::new(&[5.0, 5.0], &[40.0, 40.0]);
            let mut a = idx.query(&q, &[w1, 5]);
            let mut b = loaded.query(&q, &[w1, 5]);
            a.sort();
            b.sort();
            assert_eq!(a, b, "keyword {w1}");
        }
        #[cfg(feature = "debug-invariants")]
        loaded.validate().unwrap();
        // The loaded index keeps accepting writes where the old one
        // left off.
        let mut loaded = loaded;
        let h = loaded.insert(Point::new2(1.0, 1.0), vec![0, 5]);
        assert_eq!(h.0, idx.next_id());
    }

    #[test]
    fn persist_rejects_tampered_bytes_typed() {
        let mut idx = DynamicOrpKw::new(2, 2);
        for i in 0..200 {
            idx.insert(Point::new2(i as f64, i as f64), vec![i % 4, 4]);
        }
        let bytes = idx.to_bytes().unwrap();
        for pos in (0..bytes.len()).step_by(101) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            if let Err(e) = DynamicOrpKw::try_from_bytes(&bad) {
                assert!(
                    matches!(e, SkqError::Corrupted { .. } | SkqError::Store { .. }),
                    "byte {pos}: {e}"
                );
            }
        }
    }

    /// Deliberate corruption must be rejected with a descriptive
    /// invariant name (`debug-invariants` acceptance criterion).
    #[cfg(feature = "debug-invariants")]
    mod corruption {
        use super::*;

        fn filled() -> DynamicOrpKw {
            let mut idx = DynamicOrpKw::new(2, 2);
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..400 {
                let p = Point::new2(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0));
                idx.insert(p, vec![rng.gen_range(0..4), 4]);
            }
            idx.validate().unwrap();
            idx
        }

        #[test]
        fn misaligned_handle_map_names_handle_alignment() {
            let mut idx = filled();
            let block = idx
                .blocks
                .iter_mut()
                .flatten()
                .next()
                .expect("400 inserts form at least one block");
            block.handles.pop();
            let err = idx.validate().unwrap_err();
            assert_eq!(err.invariant(), "dynamic::handle_alignment");
        }

        #[test]
        fn phantom_live_handle_names_live_handles() {
            let mut idx = filled();
            idx.live_set.insert(999_999, ());
            let err = idx.validate().unwrap_err();
            assert_eq!(err.invariant(), "dynamic::live_handles");
        }

        #[test]
        fn duplicated_handle_names_handle_unique() {
            let mut idx = filled();
            let dup = idx
                .blocks
                .iter()
                .flatten()
                .next()
                .expect("at least one block")
                .handles[0];
            idx.buffer.push((Point::new2(1.0, 1.0), vec![0, 4], dup));
            let err = idx.validate().unwrap_err();
            assert_eq!(err.invariant(), "dynamic::handle_unique");
        }
    }
}
