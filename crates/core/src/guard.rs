//! Query guards: deadlines, cooperative cancellation, result budgets.
//!
//! A production query must never run unboundedly: the ROADMAP's service
//! setting needs per-request deadlines, client-driven cancellation, and
//! result-count caps. [`QueryGuard`] bundles the three limits and
//! [`GuardedSink`] enforces them on any [`ResultSink`] — the guard
//! checks run at each emission, so a traversal stops (via
//! `ControlFlow::Break`) at the first result produced after a limit is
//! exceeded. Guards are *cooperative*: a traversal that produces no
//! results between checks is bounded instead by the index's
//! output-sensitive cost `O(N^{1−1/k})` (Table 1), which is exactly
//! the regime where the paper guarantees fast termination anyway.
//!
//! ```
//! use skq_core::guard::{GuardedSink, QueryGuard};
//! use skq_core::sink::ResultSink;
//! use std::time::Duration;
//!
//! let guard = QueryGuard::new()
//!     .with_deadline(Duration::from_millis(50))
//!     .with_max_results(1_000);
//! let mut out = Vec::new();
//! let mut sink = GuardedSink::new(&mut out, &guard);
//! // … index.query_sink(&q, &kws, &mut sink, &mut stats) …
//! # let _ = sink.emit(7);
//! assert_eq!(out, vec![7]);
//! ```

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::SkqError;
use crate::sink::ResultSink;
use crate::stats::TruncatedReason;

/// A shared cancellation flag. Clones observe the same flag, so a
/// caller can hand one clone to a query (possibly on another thread)
/// and trip the other from a control path.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token: every guarded query holding a clone stops at
    /// its next emission check.
    pub fn cancel(&self) {
        // relaxed: monotonic one-way latch; no data is published
        // through the flag, cancellation only needs eventual
        // visibility at the next emission check
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        // relaxed: yes/no latch read on the emission hot path; a
        // stale `false` only delays the stop by one check
        self.flag.load(Ordering::Relaxed)
    }
}

/// The limits a guarded query runs under. All three are optional and
/// independent; an empty guard never trips.
#[derive(Clone, Debug, Default)]
pub struct QueryGuard {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    max_results: Option<u64>,
}

impl QueryGuard {
    /// A guard with no limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a deadline `d` from **now** (the guard's construction, not
    /// the query's start — build the guard when the request arrives).
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Attaches a cancellation token (keep a clone to trip it).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps the number of results a guarded sink accepts.
    pub fn with_max_results(mut self, n: usize) -> Self {
        self.max_results = Some(n as u64);
        self
    }

    /// The armed result budget, if any.
    pub fn max_results(&self) -> Option<u64> {
        self.max_results
    }

    /// Checks the deadline and the cancellation token (not the result
    /// budget, which only a sink can track). This is the public entry
    /// point that yields `SkqError::DeadlineExceeded` / `Cancelled`;
    /// long non-emitting phases (e.g. a build) can poll it directly.
    pub fn check(&self) -> Result<(), SkqError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(SkqError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(SkqError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// Enforces a [`QueryGuard`] around any inner [`ResultSink`].
///
/// Each emission first re-checks cancellation and the deadline, then
/// the result budget; the first violated limit is latched as the
/// sink's [`truncated_reason`](Self::truncated_reason) and every
/// subsequent emission returns `ControlFlow::Break` immediately. The
/// corresponding observability counter
/// (`skq_query_deadline_exceeded` / `skq_query_cancelled`) is bumped
/// once, at latch time.
pub struct GuardedSink<S> {
    inner: S,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    max_results: Option<u64>,
    accepted: u64,
    reason: Option<TruncatedReason>,
}

impl<S: ResultSink> GuardedSink<S> {
    /// Wraps `inner` with the limits of `guard`.
    pub fn new(inner: S, guard: &QueryGuard) -> Self {
        Self {
            inner,
            deadline: guard.deadline,
            cancel: guard.cancel.clone(),
            max_results: guard.max_results,
            accepted: 0,
            reason: None,
        }
    }

    /// Which limit tripped, if any.
    pub fn truncated_reason(&self) -> Option<TruncatedReason> {
        self.reason
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the guard, returning the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn trip(&mut self, reason: TruncatedReason) -> ControlFlow<()> {
        if self.reason.is_none() {
            self.reason = Some(reason);
            match reason {
                TruncatedReason::DeadlineExceeded => {
                    skq_obs::global()
                        .counter("skq_query_deadline_exceeded", &[])
                        .inc();
                }
                TruncatedReason::Cancelled => {
                    skq_obs::global().counter("skq_query_cancelled", &[]).inc();
                }
                TruncatedReason::Limit => {}
            }
        }
        ControlFlow::Break(())
    }
}

impl<S: ResultSink> ResultSink for GuardedSink<S> {
    fn emit(&mut self, id: u32) -> ControlFlow<()> {
        if self.reason.is_some() {
            return ControlFlow::Break(());
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return self.trip(TruncatedReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() > d) {
            return self.trip(TruncatedReason::DeadlineExceeded);
        }
        if self.max_results.is_some_and(|m| self.accepted >= m) {
            return self.trip(TruncatedReason::Limit);
        }
        let before = self.inner.emitted();
        let flow = self.inner.emit(id);
        self.accepted += self.inner.emitted() - before;
        if flow == ControlFlow::Break(()) {
            return ControlFlow::Break(());
        }
        // Latch the budget as soon as it fills so the traversal stops
        // *at* the m-th acceptance rather than on the (m+1)-th offer.
        if self.max_results.is_some_and(|m| self.accepted >= m) {
            return self.trip(TruncatedReason::Limit);
        }
        ControlFlow::Continue(())
    }

    fn emitted(&self) -> u64 {
        self.accepted
    }

    fn truncated(&self) -> bool {
        self.reason.is_some() || self.inner.truncated()
    }

    fn is_full(&self) -> bool {
        self.reason.is_some()
            || self.max_results.is_some_and(|m| self.accepted >= m)
            || self.inner.is_full()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn feed<S: ResultSink>(sink: &mut S, ids: impl IntoIterator<Item = u32>) -> usize {
        let mut offered = 0;
        for id in ids {
            offered += 1;
            if sink.emit(id) == ControlFlow::Break(()) {
                break;
            }
        }
        offered
    }

    #[test]
    fn empty_guard_never_trips() {
        let guard = QueryGuard::new();
        assert!(guard.check().is_ok());
        let mut sink = GuardedSink::new(Vec::new(), &guard);
        feed(&mut sink, 0..100);
        assert_eq!(sink.emitted(), 100);
        assert!(!sink.truncated());
        assert_eq!(sink.truncated_reason(), None);
    }

    #[test]
    fn max_results_latches_limit() {
        let guard = QueryGuard::new().with_max_results(3);
        let mut sink = GuardedSink::new(Vec::new(), &guard);
        let offered = feed(&mut sink, 0..100);
        assert_eq!(offered, 3, "traversal stops at the 3rd acceptance");
        assert_eq!(sink.emitted(), 3);
        assert!(sink.truncated());
        assert_eq!(sink.truncated_reason(), Some(TruncatedReason::Limit));
        assert!(sink.is_full());
        assert_eq!(sink.into_inner(), vec![0, 1, 2]);
    }

    #[test]
    fn cancellation_stops_emission() {
        let token = CancelToken::new();
        let guard = QueryGuard::new().with_cancel(token.clone());
        let mut sink = GuardedSink::new(Vec::new(), &guard);
        assert_eq!(sink.emit(1), ControlFlow::Continue(()));
        token.cancel();
        assert_eq!(sink.emit(2), ControlFlow::Break(()));
        assert_eq!(sink.truncated_reason(), Some(TruncatedReason::Cancelled));
        assert_eq!(sink.emitted(), 1);
        assert!(guard.check() == Err(SkqError::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let guard = QueryGuard::new().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(guard.check(), Err(SkqError::DeadlineExceeded));
        let mut sink = GuardedSink::new(Vec::new(), &guard);
        assert_eq!(sink.emit(1), ControlFlow::Break(()));
        assert_eq!(
            sink.truncated_reason(),
            Some(TruncatedReason::DeadlineExceeded)
        );
        assert_eq!(sink.emitted(), 0);
    }

    #[test]
    fn guard_forwards_inner_break() {
        use crate::sink::{CountSink, LimitSink};
        let guard = QueryGuard::new().with_max_results(10);
        let mut sink = GuardedSink::new(LimitSink::new(CountSink::new(), 2), &guard);
        let offered = feed(&mut sink, 0..100);
        assert_eq!(offered, 2);
        assert_eq!(sink.emitted(), 2);
        assert!(
            sink.truncated(),
            "inner truncation is visible through the guard"
        );
        assert_eq!(
            sink.truncated_reason(),
            None,
            "the guard itself never tripped"
        );
    }
}
