//! `L2` nearest neighbours with keywords (L2NN-KW; Corollary 7).
//!
//! Given a point `q ∈ N^d` (integer coordinates, as the paper's problem
//! statement requires), an integer `t ≥ 1`, and `k` keywords, return
//! `t` matching objects closest to `q` in Euclidean distance. Corollary
//! 7's algorithm: squared distances between integer points take `N^O(1)`
//! integer values, so binary search over the squared radius — with an
//! early-terminating SRP-KW threshold query per probe — finds the
//! minimal ball holding `t` matches in `O(log N)` probes.

use skq_geom::Point;
use skq_invidx::Keyword;

use crate::dataset::Dataset;
use crate::error::{validate, SkqError};
use crate::failpoints;
use crate::sink::{CountSink, LimitSink, ResultSink};
use crate::srp::SrpKwIndex;
use crate::stats::QueryStats;

/// The L2NN-KW index.
///
/// # Example
///
/// ```
/// use skq_core::dataset::Dataset;
/// use skq_core::nn_l2::L2NnIndex;
/// use skq_geom::Point;
///
/// // Integer coordinates, as Corollary 7 requires.
/// let data = Dataset::from_parts(vec![
///     (Point::new2(3.0, 4.0), vec![0, 1]),
///     (Point::new2(6.0, 8.0), vec![0, 1]),
/// ]);
/// let index = L2NnIndex::build(&data, 2);
/// assert_eq!(index.query(&Point::new2(0.0, 0.0), 1, &[0, 1]), vec![0]);
/// ```
pub struct L2NnIndex {
    srp: SrpKwIndex,
    points: Vec<Point>,
    /// Per-dimension coordinate extremes, for the initial radius bound.
    extremes: Vec<(f64, f64)>,
    dim: usize,
}

impl L2NnIndex {
    /// Builds the index for exactly-`k`-keyword queries.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is not an integer of magnitude at most
    /// `2^25` — the bound under which all squared distances are exact in
    /// `f64` (the paper's model: coordinates are `O(log N)`-bit
    /// integers).
    pub fn build(dataset: &Dataset, k: usize) -> Self {
        Self::try_build(dataset, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidDataset` on non-integer or oversized
    /// coordinates; `SkqError::InvalidQuery` if `k` is outside `2..=16`.
    pub fn try_build(dataset: &Dataset, k: usize) -> Result<Self, SkqError> {
        validate::build_k(k)?;
        failpoints::check("nn_l2::build")?;
        for p in dataset.points() {
            for &c in p.coords() {
                if c.fract() != 0.0 || c.abs() > (1 << 25) as f64 {
                    return Err(SkqError::InvalidDataset(format!(
                        "L2NN-KW requires integer coordinates with |c| <= 2^25, got {c}"
                    )));
                }
            }
        }
        let dim = dataset.dim();
        let extremes = (0..dim)
            .map(|d| {
                let lo = dataset
                    .points()
                    .iter()
                    .map(|p| p.get(d))
                    .fold(f64::INFINITY, f64::min);
                let hi = dataset
                    .points()
                    .iter()
                    .map(|p| p.get(d))
                    .fold(f64::NEG_INFINITY, f64::max);
                (lo, hi)
            })
            .collect();
        Ok(Self {
            srp: SrpKwIndex::try_build(dataset, k)?,
            points: dataset.points().to_vec(),
            extremes,
            dim,
        })
    }

    /// The number of query keywords the index was built for.
    pub fn k(&self) -> usize {
        self.srp.k()
    }

    /// Returns up to `t` matching objects nearest to `q` in `L2`
    /// distance, sorted by `(distance, id)`. Fewer than `t` are
    /// returned only when fewer objects match the keywords at all.
    ///
    /// # Panics
    ///
    /// Panics if `q` has non-integer or oversized coordinates.
    pub fn query(&self, q: &Point, t: usize, keywords: &[Keyword]) -> Vec<u32> {
        self.query_with_stats(q, t, keywords).0
    }

    /// Like [`query`](Self::query) with aggregate statistics over the
    /// internal threshold probes.
    pub fn query_with_stats(
        &self,
        q: &Point,
        t: usize,
        keywords: &[Keyword],
    ) -> (Vec<u32>, QueryStats) {
        assert_eq!(q.dim(), self.dim, "query dimension mismatch");
        for &c in q.coords() {
            assert!(
                c.fract() == 0.0 && c.abs() <= (1 << 25) as f64,
                "query coordinates must be integers with |c| <= 2^25"
            );
        }
        let mut stats = QueryStats::new();
        if t == 0 {
            return (Vec::new(), stats);
        }

        // Max possible squared distance to any stored point: exact
        // integer arithmetic in u64.
        let max_sq: u64 = (0..self.dim)
            .map(|d| {
                let qc = q.get(d) as i64;
                let (lo, hi) = self.extremes[d];
                let a = (qc - lo as i64).unsigned_abs();
                let b = (qc - hi as i64).unsigned_abs();
                let m = a.max(b);
                m * m
            })
            .sum();

        if !self.threshold(q, max_sq, keywords, t, &mut stats) {
            // Fewer than t matches exist: return all of them.
            let mut all = Vec::new();
            let _ = self
                .srp
                .query_sq_sink(q, max_sq as f64, keywords, &mut all, &mut stats);
            let ranked = self.rank_by_distance(q, all, usize::MAX);
            stats.emitted = ranked.len() as u64;
            return (ranked, stats);
        }

        // Binary search the integer squared radius.
        let mut lo = 0u64;
        let mut hi = max_sq;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.threshold(q, mid, keywords, t, &mut stats) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }

        let mut hits = Vec::new();
        let _ = self
            .srp
            .query_sq_sink(q, lo as f64, keywords, &mut hits, &mut stats);
        let out = self.rank_by_distance(q, hits, t);
        stats.emitted = out.len() as u64;
        (out, stats)
    }

    /// Fallible query: validates the query point and keyword set, then
    /// appends the `t` nearest matching ids to `out` in `(distance,
    /// id)` order.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` on a dimension mismatch, non-integer or
    /// oversized query coordinates, or a keyword set that is not
    /// exactly `k` distinct keywords.
    pub fn try_query_into(
        &self,
        q: &Point,
        t: usize,
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<QueryStats, SkqError> {
        validate::point_query(q, self.dim)?;
        for &c in q.coords() {
            if c.fract() != 0.0 || c.abs() > (1 << 25) as f64 {
                return Err(SkqError::InvalidQuery(format!(
                    "query coordinates must be integers with |c| <= 2^25, got {c}"
                )));
            }
        }
        validate::distinct_keywords(keywords, self.k())?;
        let (ids, stats) = self.query_with_stats(q, t, keywords);
        out.extend(ids);
        Ok(stats)
    }

    /// "Are there at least `t` matches within squared radius `r²`?" —
    /// a counting probe; no result vector is built.
    fn threshold(
        &self,
        q: &Point,
        radius_sq: u64,
        keywords: &[Keyword],
        t: usize,
        stats: &mut QueryStats,
    ) -> bool {
        let mut probe = LimitSink::new(CountSink::new(), t);
        let _ = self
            .srp
            .query_sq_sink(q, radius_sq as f64, keywords, &mut probe, stats);
        probe.emitted() >= t as u64
    }

    /// Sorts by `(squared L2 distance, id)` — exact for integer inputs —
    /// and truncates to `t`.
    fn rank_by_distance(&self, q: &Point, mut ids: Vec<u32>, t: usize) -> Vec<u32> {
        ids.sort_unstable_by(|&a, &b| {
            self.points[a as usize]
                .l2_sq(q)
                .total_cmp(&self.points[b as usize].l2_sq(q))
                .then(a.cmp(&b))
        });
        ids.truncate(t);
        ids
    }

    /// Index space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.srp.space_words() + self.dim * self.points.len()
    }

    /// Deep structural validation (`debug-invariants`; DESIGN.md §12):
    /// the per-dimension extremes (the initial radius bound) must be the
    /// exact min/max of the stored coordinates, and the inner SRP-KW
    /// index must itself validate.
    ///
    /// # Errors
    ///
    /// The first violated invariant, by name.
    #[cfg(feature = "debug-invariants")]
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        use crate::invariants::InvariantViolation as V;
        if self.extremes.len() != self.dim {
            return Err(V::new(
                "nn_l2::extremes",
                format!(
                    "{} extreme pairs for a {}D index",
                    self.extremes.len(),
                    self.dim
                ),
            ));
        }
        for (d, &(lo, hi)) in self.extremes.iter().enumerate() {
            let (want_lo, want_hi) = self
                .points
                .iter()
                .map(|p| p.get(d))
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), c| {
                    (l.min(c), h.max(c))
                });
            if lo != want_lo || hi != want_hi {
                return Err(V::new(
                    "nn_l2::extremes",
                    format!(
                        "dimension {d}: stored extremes ({lo}, {hi}) ≠ actual ({want_lo}, {want_hi})"
                    ),
                ));
            }
        }
        self.srp.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn integer_dataset(n: usize, dim: usize, vocab: u32, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_parts(
            (0..n)
                .map(|_| {
                    let coords: Vec<f64> =
                        (0..dim).map(|_| rng.gen_range(-100..100) as f64).collect();
                    let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                        .map(|_| rng.gen_range(0..vocab))
                        .collect();
                    (Point::new(&coords), doc)
                })
                .collect(),
        )
    }

    fn brute(dataset: &Dataset, q: &Point, t: usize, kws: &[Keyword]) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..dataset.len() as u32)
            .filter(|&i| dataset.doc(i as usize).contains_all(kws))
            .collect();
        ids.sort_unstable_by(|&a, &b| {
            dataset
                .point(a as usize)
                .l2_sq(q)
                .total_cmp(&dataset.point(b as usize).l2_sq(q))
                .then(a.cmp(&b))
        });
        ids.truncate(t);
        ids
    }

    #[test]
    fn matches_bruteforce_2d() {
        let dataset = integer_dataset(300, 2, 8, 1);
        let index = L2NnIndex::build(&dataset, 2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let q = Point::new2(
                rng.gen_range(-120..120) as f64,
                rng.gen_range(-120..120) as f64,
            );
            let t = rng.gen_range(1..8);
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            assert_eq!(
                index.query(&q, t, &[w1, w2]),
                brute(&dataset, &q, t, &[w1, w2]),
                "q={q:?} t={t}"
            );
        }
    }

    #[test]
    fn matches_bruteforce_3d() {
        let dataset = integer_dataset(200, 3, 6, 11);
        let index = L2NnIndex::build(&dataset, 2);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let q = Point::new3(
                rng.gen_range(-120..120) as f64,
                rng.gen_range(-120..120) as f64,
                rng.gen_range(-120..120) as f64,
            );
            let t = rng.gen_range(1..5);
            let w1 = rng.gen_range(0..6);
            let w2 = (w1 + 1 + rng.gen_range(0..5)) % 6;
            assert_eq!(
                index.query(&q, t, &[w1, w2]),
                brute(&dataset, &q, t, &[w1, w2])
            );
        }
    }

    #[test]
    fn exact_tie_distances_break_by_id() {
        let dataset = Dataset::from_parts(vec![
            (Point::new2(3.0, 4.0), vec![0, 1]),  // dist 5
            (Point::new2(-3.0, 4.0), vec![0, 1]), // dist 5
            (Point::new2(0.0, 6.0), vec![0, 1]),  // dist 6
        ]);
        let index = L2NnIndex::build(&dataset, 2);
        let q = Point::new2(0.0, 0.0);
        assert_eq!(index.query(&q, 1, &[0, 1]), vec![0]);
        assert_eq!(index.query(&q, 2, &[0, 1]), vec![0, 1]);
        assert_eq!(index.query(&q, 3, &[0, 1]), vec![0, 1, 2]);
    }

    #[test]
    fn t_exceeding_matches_returns_all_matches() {
        let dataset = integer_dataset(60, 2, 4, 21);
        let index = L2NnIndex::build(&dataset, 2);
        let q = Point::new2(0.0, 0.0);
        let got = index.query(&q, 1000, &[0, 1]);
        let expected = brute(&dataset, &q, usize::MAX, &[0, 1]);
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "integer coordinates")]
    fn non_integer_coordinates_rejected() {
        let dataset = Dataset::from_parts(vec![(Point::new2(0.5, 0.0), vec![0, 1])]);
        let _ = L2NnIndex::build(&dataset, 2);
    }

    #[test]
    fn try_surfaces_round_trip_and_validate() {
        let dataset = integer_dataset(120, 2, 6, 31);
        let index = L2NnIndex::try_build(&dataset, 2).unwrap();
        let legacy = L2NnIndex::build(&dataset, 2);
        let q = Point::new2(5.0, -7.0);
        let mut out = Vec::new();
        index.try_query_into(&q, 4, &[0, 1], &mut out).unwrap();
        assert_eq!(out, legacy.query(&q, 4, &[0, 1]));
        // Validation surfaces.
        let bad = Dataset::from_parts(vec![(Point::new2(0.5, 0.0), vec![0, 1])]);
        assert!(matches!(
            L2NnIndex::try_build(&bad, 2),
            Err(SkqError::InvalidDataset(_))
        ));
        let mut scratch = Vec::new();
        assert!(matches!(
            index.try_query_into(&Point::new2(0.5, 0.0), 1, &[0, 1], &mut scratch),
            Err(SkqError::InvalidQuery(_))
        ));
        assert!(matches!(
            index.try_query_into(&q, 1, &[0, 1, 2], &mut scratch),
            Err(SkqError::InvalidQuery(_))
        ));
    }
}
