//! A cost-based query planner over the three execution strategies.
//!
//! The paper's introduction frames the problem as a choice between two
//! naive plans; its contribution adds a third. A production system
//! holds all three and picks per query — the index's advantage is
//! largest when both naive candidate sets are big and the output is
//! small, while a *rare* keyword makes the inverted index unbeatable
//! and a *tiny* rectangle makes the geometric index unbeatable.
//! [`PlannedOrpKw`] implements that choice with simple, cheaply
//! computable cost estimates:
//!
//! * **keywords-only**: the shortest postings list length (the
//!   galloping intersection is seeded from it);
//! * **structured-only**: estimated geometric selectivity × `|D|`,
//!   from a fixed-size uniform sample of the points;
//! * **framework index**: `N^{1−1/k} · (1 + ÔUT^{1/k})`, with `ÔUT`
//!   estimated as selectivity × (an independence-assumption estimate of
//!   the keyword-intersection size).
//!
//! The estimates are deliberately coarse — the point is to avoid the
//! catastrophic plan, not to find the perfect one — and every plan
//! returns identical results, so planning is purely a performance
//! decision.

use skq_geom::Rect;
use skq_invidx::{InvertedIndex, Keyword};

use crate::dataset::Dataset;
use crate::naive::{KeywordsFirst, StructuredFirst};
use crate::orp::OrpKwIndex;
use crate::sink::{CountSink, ResultSink, TeeSink};
use crate::stats::QueryStats;
use crate::telemetry;

/// Which plan the planner chose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Intersect postings lists, filter geometrically.
    KeywordsOnly,
    /// Geometric index, filter by keywords.
    StructuredOnly,
    /// The paper's transformed index.
    Framework,
}

impl Plan {
    /// Stable label used for metric series and query-log records.
    pub fn label(self) -> &'static str {
        match self {
            Plan::KeywordsOnly => "keywords_only",
            Plan::StructuredOnly => "structured_only",
            Plan::Framework => "framework",
        }
    }
}

/// Per-strategy cost estimates (in "objects touched" units).
#[derive(Clone, Copy, Debug)]
pub struct CostEstimate {
    /// Estimated cost of the keywords-only plan.
    pub keywords_only: f64,
    /// Estimated cost of the structured-only plan.
    pub structured_only: f64,
    /// Estimated cost of the framework index.
    pub framework: f64,
    /// Estimated output size used for the framework estimate.
    pub out_estimate: f64,
}

impl CostEstimate {
    /// The plan with the smallest estimate.
    pub fn best(&self) -> Plan {
        if self.keywords_only <= self.structured_only && self.keywords_only <= self.framework {
            Plan::KeywordsOnly
        } else if self.structured_only <= self.framework {
            Plan::StructuredOnly
        } else {
            Plan::Framework
        }
    }

    /// The estimate for one specific plan.
    pub fn cost_of(&self, plan: Plan) -> f64 {
        match plan {
            Plan::KeywordsOnly => self.keywords_only,
            Plan::StructuredOnly => self.structured_only,
            Plan::Framework => self.framework,
        }
    }
}

/// Number of sampled points used for selectivity estimation.
const SAMPLE_SIZE: usize = 512;

/// An ORP-KW executor that owns all three strategies and routes each
/// query to the estimated-cheapest one.
pub struct PlannedOrpKw {
    index: OrpKwIndex,
    keywords_first: KeywordsFirst,
    structured_first: StructuredFirst,
    inv: InvertedIndex,
    /// Uniform point sample (indices) for selectivity estimation.
    sample: Vec<u32>,
    dataset: Dataset,
    k: usize,
}

impl PlannedOrpKw {
    /// Builds all three engines plus the estimation sample.
    pub fn build(dataset: &Dataset, k: usize) -> Self {
        // Deterministic xorshift sampler (the crate has no runtime RNG
        // dependency; estimation only needs an unbiased-ish spread).
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let sample: Vec<u32> = (0..SAMPLE_SIZE)
            .map(|_| (next() % dataset.len() as u64) as u32)
            .collect();
        Self {
            index: OrpKwIndex::build(dataset, k),
            keywords_first: KeywordsFirst::build(dataset),
            structured_first: StructuredFirst::build(dataset),
            inv: InvertedIndex::build(dataset.docs()),
            sample,
            dataset: dataset.clone(),
            k,
        }
    }

    /// Cost estimates for a query (no execution).
    pub fn estimate(&self, q: &Rect, keywords: &[Keyword]) -> CostEstimate {
        let n_obj = self.dataset.len() as f64;

        // Keywords-only: seeded from the shortest list.
        let min_list = keywords
            .iter()
            .map(|&w| self.inv.len_of(w))
            .min()
            .unwrap_or(0) as f64;

        // Geometric selectivity from the sample.
        let inside = self
            .sample
            .iter()
            .filter(|&&i| q.contains(self.dataset.point(i as usize)))
            .count() as f64;
        let selectivity = (inside + 1.0) / (self.sample.len() as f64 + 1.0);
        let structured = selectivity * n_obj;

        // Output estimate: sample the shortest postings list and count
        // how many sampled objects carry all the other keywords. The
        // naive independence estimate n·Π(len/n) is catastrophically
        // wrong exactly where the framework shines (frequent keywords
        // that never co-occur), so a 64-probe sample is worth its cost.
        let min_w = keywords.iter().copied().min_by_key(|&w| self.inv.len_of(w));
        let inter = match min_w {
            None => n_obj,
            Some(w) => {
                let list = self.inv.postings(w);
                if list.is_empty() {
                    0.0
                } else {
                    let step = (list.len() / 64).max(1);
                    let mut probed = 0usize;
                    let mut hit = 0usize;
                    for &i in list.iter().step_by(step) {
                        probed += 1;
                        if self.dataset.doc(i as usize).contains_all(keywords) {
                            hit += 1;
                        }
                    }
                    list.len() as f64 * (hit as f64 + 0.5) / (probed as f64 + 1.0)
                }
            }
        };
        let out_estimate = (inter * selectivity).max(0.0);

        CostEstimate {
            keywords_only: min_list,
            structured_only: structured,
            framework: self.framework_cost(out_estimate),
            out_estimate,
        }
    }

    /// The framework cost `N^{1−1/k} · (1 + OUT^{1/k})` for a given
    /// (estimated or actual) output size.
    fn framework_cost(&self, out: f64) -> f64 {
        let big_n = self.dataset.input_size() as f64;
        big_n.powf(1.0 - 1.0 / self.k as f64) * (1.0 + out.max(0.0).powf(1.0 / self.k as f64))
    }

    /// Executes the query with the estimated-cheapest plan; returns the
    /// matches (sorted) and the plan used.
    ///
    /// Telemetry: increments `skq_planner_chosen_total{plan=…}`,
    /// compares the prediction against a post-hoc estimate using the
    /// true output size (bumping `skq_planner_mispredictions_total`
    /// when the winner would have changed), and appends a query-log
    /// record carrying both costs.
    pub fn query(&self, q: &Rect, keywords: &[Keyword]) -> (Vec<u32>, Plan) {
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        let plan = self.query_sink(q, keywords, &mut out, &mut stats);
        out.sort_unstable();
        (out, plan)
    }

    /// Streaming planned query: picks the estimated-cheapest plan and
    /// emits matching ids into `sink` in traversal order (unsorted).
    /// Returns the chosen plan.
    ///
    /// The emission stream is teed into an internal counter so the true
    /// output size feeds the misprediction check regardless of what
    /// `sink` does with the ids; if `sink` stops the query early, the
    /// post-hoc check uses the partial count (the best observation
    /// available).
    pub fn query_sink<S: ResultSink>(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> Plan {
        let span = skq_obs::Span::enter("orp.planned_query");
        let est = self.estimate(q, keywords);
        let plan = est.best();
        let mut tee = TeeSink::new(&mut *sink, CountSink::new());
        let _ = match plan {
            Plan::KeywordsOnly => self.keywords_first.query_rect_sink(q, keywords, &mut tee),
            Plan::StructuredOnly => self.structured_first.query_rect_sink(q, keywords, &mut tee),
            Plan::Framework => self.index.query_sink(q, keywords, &mut tee, stats),
        };
        let out_len = tee.secondary().count();
        if plan != Plan::Framework {
            // The naive engines carry no internal stats; account their
            // offered results here so telemetry stays populated.
            stats.reported += out_len;
        }

        // Post-hoc check: substitute the true output size into the
        // framework term (the naive estimates don't depend on OUT). If
        // the winner changes, the estimator picked the wrong plan.
        let actual = CostEstimate {
            framework: self.framework_cost(out_len as f64),
            out_estimate: out_len as f64,
            ..est
        };
        let reg = skq_obs::global();
        reg.counter("skq_planner_chosen_total", &[("plan", plan.label())])
            .inc();
        if actual.best() != plan {
            reg.counter("skq_planner_mispredictions_total", &[]).inc();
        }
        telemetry::record_query_planned(
            "orp_planned",
            self.k,
            Some(plan.label()),
            stats,
            span.elapsed(),
            Some(est.cost_of(plan)),
            Some(actual.cost_of(plan)),
        );
        plan
    }

    /// Executes with an explicit plan (for testing/measurement).
    pub fn query_with_plan(&self, q: &Rect, keywords: &[Keyword], plan: Plan) -> Vec<u32> {
        let mut out = match plan {
            Plan::KeywordsOnly => self.keywords_first.query_rect(q, keywords),
            Plan::StructuredOnly => self.structured_first.query_rect(q, keywords),
            Plan::Framework => self.index.query(q, keywords),
        };
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use skq_geom::Point;

    /// A dataset engineered so each plan wins somewhere:
    /// * keyword 0 and 1: very frequent (framework territory);
    /// * keyword 2: appears once (keywords-only territory);
    /// * tiny rectangles: structured-only territory.
    fn dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(5);
        let mut parts: Vec<(Point, Vec<Keyword>)> = (0..4000)
            .map(|i| {
                let p = Point::new2(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                let mut doc = vec![0u32];
                if i % 2 == 0 {
                    doc.push(1);
                }
                doc.push(3 + rng.gen_range(0..50));
                (p, doc)
            })
            .collect();
        parts[777].1.push(2); // the needle keyword
        Dataset::from_parts(parts)
    }

    #[test]
    fn all_plans_agree() {
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        let queries = [
            (Rect::full(2), vec![0u32, 1u32]),
            (Rect::new(&[100.0, 100.0], &[300.0, 300.0]), vec![0, 1]),
            (Rect::full(2), vec![0, 2]),
            (Rect::new(&[499.0, 499.0], &[501.0, 501.0]), vec![0, 1]),
        ];
        for (q, kws) in &queries {
            let a = planner.query_with_plan(q, kws, Plan::KeywordsOnly);
            let b = planner.query_with_plan(q, kws, Plan::StructuredOnly);
            let c = planner.query_with_plan(q, kws, Plan::Framework);
            assert_eq!(a, b);
            assert_eq!(b, c);
            let (d2, _) = planner.query(q, kws);
            assert_eq!(d2, c);
        }
    }

    #[test]
    fn sink_query_counts_and_limits() {
        use crate::sink::LimitSink;
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        let q = Rect::new(&[100.0, 100.0], &[300.0, 300.0]);
        let (full, _) = planner.query(&q, &[0, 1]);
        assert!(full.len() > 3, "query too selective for this test");

        let mut count = CountSink::new();
        let mut stats = QueryStats::new();
        planner.query_sink(&q, &[0, 1], &mut count, &mut stats);
        assert_eq!(count.count(), full.len() as u64);

        let mut limited = LimitSink::new(Vec::new(), 3);
        let mut stats = QueryStats::new();
        planner.query_sink(&q, &[0, 1], &mut limited, &mut stats);
        assert!(limited.truncated());
        let got = limited.into_inner();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|i| full.binary_search(i).is_ok()));
    }

    #[test]
    fn rare_keyword_prefers_keywords_only() {
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        let est = planner.estimate(&Rect::full(2), &[0, 2]);
        assert_eq!(est.best(), Plan::KeywordsOnly, "{est:?}");
    }

    #[test]
    fn tiny_rectangle_prefers_structured_only() {
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        let q = Rect::new(&[500.0, 500.0], &[500.5, 500.5]);
        let est = planner.estimate(&q, &[0, 1]);
        assert_eq!(est.best(), Plan::StructuredOnly, "{est:?}");
    }

    #[test]
    fn frequent_keywords_big_window_prefers_framework() {
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        // Both keywords huge, window big: naive plans pay thousands,
        // framework pays ~√N·(1 + OUT^(1/2)).
        let q = Rect::new(&[0.0, 0.0], &[400.0, 400.0]);
        let est = planner.estimate(&q, &[0, 1]);
        // The framework estimate must at least beat the keywords-only
        // estimate (2000-long list); depending on OUT it may also beat
        // structured-only.
        assert!(est.framework < est.keywords_only, "{est:?}");
    }

    #[test]
    fn estimates_are_sane() {
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        let est = planner.estimate(&Rect::full(2), &[0, 1]);
        // Keyword 0 is in all 4000 docs, keyword 1 in 2000.
        assert_eq!(est.keywords_only, 2000.0);
        assert!(est.structured_only > 3000.0); // full-space selectivity ≈ 1
        assert!(est.out_estimate > 500.0);
    }
}
