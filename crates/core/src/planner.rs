//! A cost-based query planner over the three execution strategies.
//!
//! The paper's introduction frames the problem as a choice between two
//! naive plans; its contribution adds a third. A production system
//! holds all three and picks per query — the index's advantage is
//! largest when both naive candidate sets are big and the output is
//! small, while a *rare* keyword makes the inverted index unbeatable
//! and a *tiny* rectangle makes the geometric index unbeatable.
//! [`PlannedOrpKw`] implements that choice with simple, cheaply
//! computable cost estimates:
//!
//! * **keywords-only**: the shortest postings list length (the
//!   galloping intersection is seeded from it);
//! * **structured-only**: estimated geometric selectivity × `|D|`,
//!   from a fixed-size uniform sample of the points;
//! * **framework index**: `N^{1−1/k} · (1 + ÔUT^{1/k})`, with `ÔUT`
//!   estimated as selectivity × (an independence-assumption estimate of
//!   the keyword-intersection size).
//!
//! The estimates are deliberately coarse — the point is to avoid the
//! catastrophic plan, not to find the perfect one — and every plan
//! returns identical results, so planning is purely a performance
//! decision.

use skq_geom::{ConvexPolytope, Rect};
use skq_invidx::{InvertedIndex, Keyword};

use crate::dataset::Dataset;
use crate::error::{validate, SkqError};
use crate::guard::{GuardedSink, QueryGuard};
use crate::lc::LcKwIndex;
use crate::naive::{KeywordsFirst, StructuredFirst};
use crate::orp::OrpKwIndex;
use crate::sink::{CountSink, ResultSink, TeeSink};
use crate::stats::QueryStats;
use crate::telemetry;

/// Which plan the planner chose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Intersect postings lists, filter geometrically.
    KeywordsOnly,
    /// Geometric index, filter by keywords.
    StructuredOnly,
    /// The paper's transformed index.
    Framework,
}

impl Plan {
    /// Stable label used for metric series and query-log records.
    pub fn label(self) -> &'static str {
        match self {
            Plan::KeywordsOnly => "keywords_only",
            Plan::StructuredOnly => "structured_only",
            Plan::Framework => "framework",
        }
    }
}

/// Which engine tier the planner's "framework" slot was admitted at.
///
/// Under a space budget (see
/// [`try_build_with_budget`](PlannedOrpKw::try_build_with_budget)) the
/// planner degrades gracefully instead of failing the build: the
/// super-linear ORP-KW index (Theorem 1) is tried first, then the
/// linear-space LC-KW route (footnote 3), then no index at all — every
/// tier still answers every query correctly, trading speed for space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildTier {
    /// Full ORP-KW index admitted (paper's query bound).
    Framework,
    /// Linear-space LC-KW fallback (extra `log N` factor, footnote 3).
    Linear,
    /// No geometric-keyword index; framework-plan queries are served by
    /// the cheaper of the two naive engines.
    Naive,
}

impl BuildTier {
    /// Stable label used for metric series and query-log records.
    pub fn label(self) -> &'static str {
        match self {
            BuildTier::Framework => "framework",
            BuildTier::Linear => "linear",
            BuildTier::Naive => "naive",
        }
    }
}

/// The engine occupying the planner's framework slot.
enum Engine {
    Framework(OrpKwIndex),
    Linear(LcKwIndex),
    Naive,
}

/// Per-strategy cost estimates (in "objects touched" units).
#[derive(Clone, Copy, Debug)]
pub struct CostEstimate {
    /// Estimated cost of the keywords-only plan.
    pub keywords_only: f64,
    /// Estimated cost of the structured-only plan.
    pub structured_only: f64,
    /// Estimated cost of the framework index.
    pub framework: f64,
    /// Estimated output size used for the framework estimate.
    pub out_estimate: f64,
}

impl CostEstimate {
    /// The plan with the smallest estimate.
    pub fn best(&self) -> Plan {
        if self.keywords_only <= self.structured_only && self.keywords_only <= self.framework {
            Plan::KeywordsOnly
        } else if self.structured_only <= self.framework {
            Plan::StructuredOnly
        } else {
            Plan::Framework
        }
    }

    /// The estimate for one specific plan.
    pub fn cost_of(&self, plan: Plan) -> f64 {
        match plan {
            Plan::KeywordsOnly => self.keywords_only,
            Plan::StructuredOnly => self.structured_only,
            Plan::Framework => self.framework,
        }
    }
}

/// Number of sampled points used for selectivity estimation.
const SAMPLE_SIZE: usize = 512;

/// An ORP-KW executor that owns all three strategies and routes each
/// query to the estimated-cheapest one.
pub struct PlannedOrpKw {
    engine: Engine,
    tier: BuildTier,
    keywords_first: KeywordsFirst,
    structured_first: StructuredFirst,
    inv: InvertedIndex,
    /// Uniform point sample (indices) for selectivity estimation.
    sample: Vec<u32>,
    dataset: Dataset,
    k: usize,
}

impl PlannedOrpKw {
    /// Builds all three engines plus the estimation sample.
    ///
    /// # Panics
    ///
    /// On an invalid dataset or `k`; see
    /// [`try_build`](Self::try_build) for the fallible surface.
    // The panic is this wrapper's documented contract; `try_build` is
    // the fallible surface.
    #[allow(clippy::disallowed_macros)]
    pub fn build(dataset: &Dataset, k: usize) -> Self {
        Self::try_build(dataset, k).unwrap_or_else(|e| panic!("{e}")) // skq-lint: allow(L01) documented panicking wrapper over try_build
    }

    /// Fallible build with no space budget (always admits the full
    /// framework index).
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidDataset` / `InvalidQuery` exactly as
    /// [`OrpKwIndex::try_build`].
    pub fn try_build(dataset: &Dataset, k: usize) -> Result<Self, SkqError> {
        Self::try_build_with_budget(dataset, k, None)
    }

    /// Fallible build under an optional space budget (in 64-bit words),
    /// degrading gracefully instead of failing:
    ///
    /// 1. the full ORP-KW index ([`BuildTier::Framework`]);
    /// 2. on `BuildBudgetExceeded`, the linear-space LC-KW route
    ///    ([`BuildTier::Linear`], footnote 3 of the paper);
    /// 3. if even that exceeds the budget, no index at all
    ///    ([`BuildTier::Naive`]) — framework-plan queries are served by
    ///    the cheaper naive engine.
    ///
    /// The admitted tier is recorded on the
    /// `skq_planner_build_tier_total{tier=…}` counter and stamped into
    /// every query-log record this planner writes.
    ///
    /// # Errors
    ///
    /// Validation errors propagate; `BuildBudgetExceeded` never
    /// escapes (it triggers the next tier instead).
    pub fn try_build_with_budget(
        dataset: &Dataset,
        k: usize,
        max_space_words: Option<usize>,
    ) -> Result<Self, SkqError> {
        // Deterministic xorshift sampler (the crate has no runtime RNG
        // dependency; estimation only needs an unbiased-ish spread).
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let sample: Vec<u32> = (0..SAMPLE_SIZE)
            .map(|_| (next() % dataset.len().max(1) as u64) as u32)
            .collect();
        let (engine, tier) = match OrpKwIndex::try_build_with_budget(dataset, k, max_space_words) {
            Ok(index) => (Engine::Framework(index), BuildTier::Framework),
            Err(SkqError::BuildBudgetExceeded { .. }) => {
                match LcKwIndex::try_build_with_budget(dataset, k, max_space_words) {
                    Ok(lc) => (Engine::Linear(lc), BuildTier::Linear),
                    Err(SkqError::BuildBudgetExceeded { .. }) => (Engine::Naive, BuildTier::Naive),
                    Err(e) => return Err(e),
                }
            }
            Err(e) => return Err(e),
        };
        skq_obs::global()
            .counter("skq_planner_build_tier_total", &[("tier", tier.label())])
            .inc();
        Ok(Self {
            engine,
            tier,
            keywords_first: KeywordsFirst::build(dataset),
            structured_first: StructuredFirst::build(dataset),
            inv: InvertedIndex::build(dataset.docs()),
            sample,
            dataset: dataset.clone(),
            k,
        })
    }

    /// The tier the framework slot was admitted at.
    pub fn tier(&self) -> BuildTier {
        self.tier
    }

    /// Cost estimates for a query (no execution).
    pub fn estimate(&self, q: &Rect, keywords: &[Keyword]) -> CostEstimate {
        let n_obj = self.dataset.len() as f64;

        // Keywords-only: seeded from the shortest list.
        let min_list = keywords
            .iter()
            .map(|&w| self.inv.len_of(w))
            .min()
            .unwrap_or(0) as f64;

        // Geometric selectivity from the sample.
        let inside = self
            .sample
            .iter()
            .filter(|&&i| q.contains(self.dataset.point(i as usize)))
            .count() as f64;
        let selectivity = (inside + 1.0) / (self.sample.len() as f64 + 1.0);
        let structured = selectivity * n_obj;

        // Output estimate: sample the shortest postings list and count
        // how many sampled objects carry all the other keywords. The
        // naive independence estimate n·Π(len/n) is catastrophically
        // wrong exactly where the framework shines (frequent keywords
        // that never co-occur), so a 64-probe sample is worth its cost.
        let min_w = keywords.iter().copied().min_by_key(|&w| self.inv.len_of(w));
        let inter = match min_w {
            None => n_obj,
            Some(w) => {
                let list = self.inv.postings(w);
                if list.is_empty() {
                    0.0
                } else {
                    let step = (list.len() / 64).max(1);
                    let mut probed = 0usize;
                    let mut hit = 0usize;
                    for &i in list.iter().step_by(step) {
                        probed += 1;
                        if self.dataset.doc(i as usize).contains_all(keywords) {
                            hit += 1;
                        }
                    }
                    list.len() as f64 * (hit as f64 + 0.5) / (probed as f64 + 1.0)
                }
            }
        };
        let out_estimate = (inter * selectivity).max(0.0);

        CostEstimate {
            keywords_only: min_list,
            structured_only: structured,
            framework: self.framework_cost(out_estimate),
            out_estimate,
        }
    }

    /// The framework cost `N^{1−1/k} · (1 + OUT^{1/k})` for a given
    /// (estimated or actual) output size.
    fn framework_cost(&self, out: f64) -> f64 {
        let big_n = self.dataset.input_size() as f64;
        big_n.powf(1.0 - 1.0 / self.k as f64) * (1.0 + out.max(0.0).powf(1.0 / self.k as f64))
    }

    /// Executes the query with the estimated-cheapest plan; returns the
    /// matches (sorted) and the plan used.
    ///
    /// Telemetry: increments `skq_planner_chosen_total{plan=…}`,
    /// compares the prediction against a post-hoc estimate using the
    /// true output size (bumping `skq_planner_mispredictions_total`
    /// when the winner would have changed), and appends a query-log
    /// record carrying both costs.
    pub fn query(&self, q: &Rect, keywords: &[Keyword]) -> (Vec<u32>, Plan) {
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        let plan = self.query_sink(q, keywords, &mut out, &mut stats);
        out.sort_unstable();
        (out, plan)
    }

    /// Fallible planned query: validates the rectangle and keyword
    /// contract up front, then executes [`query`](Self::query),
    /// appending the sorted matches to `out` and returning the plan
    /// used.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` on a dimension mismatch, NaN bounds, or
    /// a wrong number of distinct keywords.
    pub fn try_query_into(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<Plan, SkqError> {
        validate::rect_query(q, self.dataset.dim())?;
        validate::distinct_keywords(keywords, self.k)?;
        let (ids, plan) = self.query(q, keywords);
        out.extend(ids);
        Ok(plan)
    }

    /// Streaming planned query: picks the estimated-cheapest plan and
    /// emits matching ids into `sink` in traversal order (unsorted).
    /// Returns the chosen plan.
    ///
    /// The emission stream is teed into an internal counter so the true
    /// output size feeds the misprediction check regardless of what
    /// `sink` does with the ids; if `sink` stops the query early, the
    /// post-hoc check uses the partial count (the best observation
    /// available).
    pub fn query_sink<S: ResultSink>(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> Plan {
        let span = skq_obs::Span::enter("orp.planned_query");
        skq_obs::trace::attach_str("build_tier", self.tier().label());
        let est = self.estimate(q, keywords);
        let plan = est.best();
        let mut tee = TeeSink::new(&mut *sink, CountSink::new());
        let framework_ran = match plan {
            Plan::KeywordsOnly => {
                let _ = self.keywords_first.query_rect_sink(q, keywords, &mut tee);
                false
            }
            Plan::StructuredOnly => {
                let _ = self.structured_first.query_rect_sink(q, keywords, &mut tee);
                false
            }
            Plan::Framework => self.run_framework_slot(q, keywords, &est, &mut tee, stats),
        };
        let out_len = tee.secondary().count();
        if !framework_ran {
            // The naive engines carry no internal stats; account their
            // offered results here so telemetry stays populated.
            stats.reported += out_len;
        }

        // Post-hoc check: substitute the true output size into the
        // framework term (the naive estimates don't depend on OUT). If
        // the winner changes, the estimator picked the wrong plan.
        let actual = CostEstimate {
            framework: self.framework_cost(out_len as f64),
            out_estimate: out_len as f64,
            ..est
        };
        let reg = skq_obs::global();
        reg.counter("skq_planner_chosen_total", &[("plan", plan.label())])
            .inc();
        if actual.best() != plan {
            reg.counter("skq_planner_mispredictions_total", &[]).inc();
        }
        telemetry::record_query_planned(
            "orp_planned",
            self.k,
            Some(self.plan_label(plan)),
            stats,
            span.elapsed(),
            Some(est.cost_of(plan)),
            Some(actual.cost_of(plan)),
        );
        plan
    }

    /// Guarded planned query: like [`query`](Self::query) but enforcing
    /// the deadline / cancellation / result budget of `guard`. The
    /// returned stats carry [`truncated_reason`](QueryStats) when a
    /// limit tripped; results collected before the trip are kept.
    pub fn query_guarded(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        guard: &QueryGuard,
    ) -> (Vec<u32>, Plan, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        let mut guarded = GuardedSink::new(&mut out, guard);
        let plan = self.query_sink(q, keywords, &mut guarded, &mut stats);
        let reason = guarded.truncated_reason();
        stats.truncated |= reason.is_some();
        stats.truncated_reason = stats.truncated_reason.or(reason);
        out.sort_unstable();
        (out, plan, stats)
    }

    /// Executes with an explicit plan (for testing/measurement).
    pub fn query_with_plan(&self, q: &Rect, keywords: &[Keyword], plan: Plan) -> Vec<u32> {
        let mut out = match plan {
            Plan::KeywordsOnly => self.keywords_first.query_rect(q, keywords),
            Plan::StructuredOnly => self.structured_first.query_rect(q, keywords),
            Plan::Framework => match &self.engine {
                Engine::Framework(index) => index.query(q, keywords),
                Engine::Linear(lc) => lc.query_rect(q, keywords),
                Engine::Naive => self.structured_first.query_rect(q, keywords),
            },
        };
        out.sort_unstable();
        out
    }

    /// Serves a framework-plan query on whatever tier was admitted.
    /// Returns whether an actual framework/linear index ran (i.e.
    /// whether `stats` was populated by the engine itself).
    fn run_framework_slot<S: ResultSink>(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        est: &CostEstimate,
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> bool {
        match &self.engine {
            Engine::Framework(index) => {
                let _ = index.query_sink(q, keywords, sink, stats);
                true
            }
            Engine::Linear(lc) => {
                let poly = ConvexPolytope::from_rect(q);
                let _ = lc.query_sink(poly.halfspaces(), keywords, sink, stats);
                true
            }
            Engine::Naive => {
                // No index survived admission: serve with the cheaper
                // of the two naive engines (still correct, just slow).
                if est.keywords_only <= est.structured_only {
                    let _ = self.keywords_first.query_rect_sink(q, keywords, sink);
                } else {
                    let _ = self.structured_first.query_rect_sink(q, keywords, sink);
                }
                false
            }
        }
    }

    /// Query-log label: the plan, suffixed with the degraded tier when
    /// the framework slot is not the full index (e.g.
    /// `framework@linear`).
    fn plan_label(&self, plan: Plan) -> &'static str {
        match (plan, self.tier) {
            (Plan::Framework, BuildTier::Linear) => "framework@linear",
            (Plan::Framework, BuildTier::Naive) => "framework@naive",
            _ => plan.label(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use skq_geom::Point;

    /// A dataset engineered so each plan wins somewhere:
    /// * keyword 0 and 1: very frequent (framework territory);
    /// * keyword 2: appears once (keywords-only territory);
    /// * tiny rectangles: structured-only territory.
    fn dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(5);
        let mut parts: Vec<(Point, Vec<Keyword>)> = (0..4000)
            .map(|i| {
                let p = Point::new2(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                let mut doc = vec![0u32];
                if i % 2 == 0 {
                    doc.push(1);
                }
                doc.push(3 + rng.gen_range(0..50));
                (p, doc)
            })
            .collect();
        parts[777].1.push(2); // the needle keyword
        Dataset::from_parts(parts)
    }

    #[test]
    fn all_plans_agree() {
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        let queries = [
            (Rect::full(2), vec![0u32, 1u32]),
            (Rect::new(&[100.0, 100.0], &[300.0, 300.0]), vec![0, 1]),
            (Rect::full(2), vec![0, 2]),
            (Rect::new(&[499.0, 499.0], &[501.0, 501.0]), vec![0, 1]),
        ];
        for (q, kws) in &queries {
            let a = planner.query_with_plan(q, kws, Plan::KeywordsOnly);
            let b = planner.query_with_plan(q, kws, Plan::StructuredOnly);
            let c = planner.query_with_plan(q, kws, Plan::Framework);
            assert_eq!(a, b);
            assert_eq!(b, c);
            let (d2, _) = planner.query(q, kws);
            assert_eq!(d2, c);
        }
    }

    #[test]
    fn sink_query_counts_and_limits() {
        use crate::sink::LimitSink;
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        let q = Rect::new(&[100.0, 100.0], &[300.0, 300.0]);
        let (full, _) = planner.query(&q, &[0, 1]);
        assert!(full.len() > 3, "query too selective for this test");

        let mut count = CountSink::new();
        let mut stats = QueryStats::new();
        planner.query_sink(&q, &[0, 1], &mut count, &mut stats);
        assert_eq!(count.count(), full.len() as u64);

        let mut limited = LimitSink::new(Vec::new(), 3);
        let mut stats = QueryStats::new();
        planner.query_sink(&q, &[0, 1], &mut limited, &mut stats);
        assert!(limited.truncated());
        let got = limited.into_inner();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|i| full.binary_search(i).is_ok()));
    }

    #[test]
    fn rare_keyword_prefers_keywords_only() {
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        let est = planner.estimate(&Rect::full(2), &[0, 2]);
        assert_eq!(est.best(), Plan::KeywordsOnly, "{est:?}");
    }

    #[test]
    fn tiny_rectangle_prefers_structured_only() {
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        let q = Rect::new(&[500.0, 500.0], &[500.5, 500.5]);
        let est = planner.estimate(&q, &[0, 1]);
        assert_eq!(est.best(), Plan::StructuredOnly, "{est:?}");
    }

    #[test]
    fn frequent_keywords_big_window_prefers_framework() {
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        // Both keywords huge, window big: naive plans pay thousands,
        // framework pays ~√N·(1 + OUT^(1/2)).
        let q = Rect::new(&[0.0, 0.0], &[400.0, 400.0]);
        let est = planner.estimate(&q, &[0, 1]);
        // The framework estimate must at least beat the keywords-only
        // estimate (2000-long list); depending on OUT it may also beat
        // structured-only.
        assert!(est.framework < est.keywords_only, "{est:?}");
    }

    #[test]
    fn budget_degrades_through_tiers_without_losing_answers() {
        // Uniform keyword distribution: every point carries both query
        // keywords, so the LC footprint sits clearly below the ORP one
        // and a mid-point budget exercises the linear tier.
        let mut rng = StdRng::seed_from_u64(7);
        let parts: Vec<(Point, Vec<Keyword>)> = (0..2000)
            .map(|_| {
                let p = Point::new2(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                (p, vec![0u32, 1, 100 + rng.gen_range(0..50)])
            })
            .collect();
        let d = Dataset::from_parts(parts);
        let q = Rect::new(&[100.0, 100.0], &[300.0, 300.0]);
        let kws = [0u32, 1u32];

        let full = PlannedOrpKw::try_build_with_budget(&d, 2, None).unwrap();
        assert_eq!(full.tier(), BuildTier::Framework);
        let expected = full.query_with_plan(&q, &kws, Plan::Framework);
        assert!(!expected.is_empty());

        // A budget between the LC footprint and the ORP footprint must
        // admit the linear tier; a budget of one word admits nothing.
        let orp_words = OrpKwIndex::build(&d, 2).space_words();
        let lc_words = LcKwIndex::build(&d, 2).space_words();
        assert!(lc_words < orp_words, "lc={lc_words} orp={orp_words}");
        let mid = (lc_words + orp_words) / 2;

        for (budget, tier) in [(Some(mid), BuildTier::Linear), (Some(1), BuildTier::Naive)] {
            let planner = PlannedOrpKw::try_build_with_budget(&d, 2, budget).unwrap();
            assert_eq!(planner.tier(), tier, "budget {budget:?}");
            assert_eq!(planner.query_with_plan(&q, &kws, Plan::Framework), expected);
            let (got, _) = planner.query(&q, &kws);
            assert_eq!(got, expected);
        }
        let tiers =
            skq_obs::global().counter("skq_planner_build_tier_total", &[("tier", "linear")]);
        assert!(tiers.get() >= 1);
    }

    #[test]
    fn guarded_query_truncates_with_reason() {
        use crate::stats::TruncatedReason;
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        let q = Rect::new(&[100.0, 100.0], &[300.0, 300.0]);
        let (full, _) = planner.query(&q, &[0, 1]);
        assert!(full.len() > 3);
        let guard = QueryGuard::new().with_max_results(3);
        let (got, _, stats) = planner.query_guarded(&q, &[0, 1], &guard);
        assert_eq!(got.len(), 3);
        assert_eq!(stats.truncated_reason, Some(TruncatedReason::Limit));
        assert!(got.iter().all(|i| full.binary_search(i).is_ok()));
    }

    #[test]
    fn estimates_are_sane() {
        let d = dataset();
        let planner = PlannedOrpKw::build(&d, 2);
        let est = planner.estimate(&Rect::full(2), &[0, 1]);
        // Keyword 0 is in all 4000 docs, keyword 1 in 2000.
        assert_eq!(est.keywords_only, 2000.0);
        assert!(est.structured_only > 3000.0); // full-space selectivity ≈ 1
        assert!(est.out_estimate > 500.0);
    }
}
