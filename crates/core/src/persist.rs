//! Paged snapshot codec behind the `skq-store` persistence tier.
//!
//! A snapshot is a little-endian byte stream: one fixed 24-byte file
//! header followed by a sequence of *pages*, each a fixed 24-byte page
//! header plus a variable-length payload. Every page carries its kind,
//! the schema version it was written under, its position in the file,
//! and an FNV-1a checksum of its payload, so corruption — truncation,
//! bit flips, wrong magic, a future [`SCHEMA_VERSION`] — is detected
//! and surfaced as a typed [`SkqError::Corrupted`]. Loading never
//! panics on bad bytes.
//!
//! Types opt in by implementing [`Persist`]: `to_pages` appends pages
//! to a [`PageWriter`], `from_pages` consumes them from a
//! [`PageReader`] in the same order. The provided
//! `to_bytes`/`to_writer`/`try_from_bytes`/`try_from_reader` methods
//! handle the file header and the end-of-file check. The on-disk
//! format is specified normatively in DESIGN.md §15.
//!
//! Integers are LEB128 varints; `f64` coordinates are the 8 raw
//! little-endian bytes of [`f64::to_bits`] (±∞ round-trips; rank-space
//! cells use infinite bounds). Encoding is deterministic — map-backed
//! sections are written in sorted key order — so saving the same index
//! twice yields identical bytes.

use std::io::{Read, Write};

use skq_geom::RankSpace;
use skq_invidx::{Document, InvertedIndex, Keyword, ObjectId};

use crate::error::SkqError;
use crate::failpoints;

/// Version of the on-disk snapshot format. Written into the file
/// header and into every page header; the loader rejects any other
/// value. Bump it whenever any serialized section changes shape
/// (DESIGN.md §15 records the policy; lint rule L13 ties every
/// serialized-section file to this constant).
pub const SCHEMA_VERSION: u16 = 1;

/// First eight bytes of every snapshot file.
pub const FILE_MAGIC: [u8; 8] = *b"SKQSNAP\0";

/// First four bytes of every page header (`"SKQP"` in the byte order
/// written — the bytes are also given normatively in DESIGN.md §15).
pub const PAGE_MAGIC: [u8; 4] = *b"SKQP";

/// Size of the file header, in bytes.
pub const FILE_HEADER_BYTES: usize = 24;

/// Size of every page header, in bytes.
pub const PAGE_HEADER_BYTES: usize = 24;

/// Page-kind discriminants (the `kind` field of each page header).
///
/// Kinds identify which section a page belongs to; the loader checks
/// that each page it reads carries the kind it expects next, so a
/// reordered or misassembled file fails loudly instead of decoding
/// into the wrong structure.
pub mod kind {
    /// `Dataset` scalars: object count and dimensionality.
    pub const DATASET_HEAD: u16 = 1;
    /// A chunk of `Dataset` points (raw `f64` coordinates).
    pub const DATASET_POINTS: u16 = 2;
    /// A chunk of `Dataset` documents (delta-coded keyword sets).
    pub const DATASET_DOCS: u16 = 3;
    /// `InvertedIndex` scalars: object count, list count, chunk count.
    pub const POSTINGS_HEAD: u16 = 4;
    /// A chunk of postings lists (delta-coded ascending object ids).
    pub const POSTINGS_CHUNK: u16 = 5;
    /// `RankSpace` scalars: dimensionality and length.
    pub const RANK_HEAD: u16 = 6;
    /// One sorted `RankSpace` column: `(coordinate, object id)` pairs.
    pub const RANK_COLUMN: u16 = 7;
    /// Framework-tree scalars: `k`, config, totals, chunk counts.
    pub const TREE_HEAD: u16 = 8;
    /// A chunk of the tree partitioner's points.
    pub const TREE_POINTS: u16 = 9;
    /// The tree partitioner's per-object weights.
    pub const TREE_WEIGHTS: u16 = 10;
    /// A chunk of the tree's documents.
    pub const TREE_DOCS: u16 = 11;
    /// A chunk of arena-flattened tree nodes.
    pub const TREE_NODES: u16 = 12;
    /// `OrpKwIndex` head: engine tag, dimensionality, `k`.
    pub const ORP_HEAD: u16 = 13;
    /// `OrpKwSuite` head: `k_max`.
    pub const SUITE_HEAD: u16 = 14;
    /// `RrKwIndex` head: rectangle dimensionality and count.
    pub const RR_HEAD: u16 = 15;
    /// `SpKwIndex` head: strategy tag, dimensionality, `k`.
    pub const SP_HEAD: u16 = 16;
    /// `SrpKwIndex` head: simplex dimensionality.
    pub const SRP_HEAD: u16 = 17;
    /// `LinfNnIndex` head: engine tag, dimensionality, length.
    pub const NN_HEAD: u16 = 18;
    /// A chunk of `LinfNnIndex` points.
    pub const NN_POINTS: u16 = 19;
    /// `DynamicOrpKw` head: `k`, `dim`, handle watermark, buffer
    /// length, and the logarithmic-method slot occupancy.
    pub const DYN_HEAD: u16 = 20;
    /// A chunk of `DynamicOrpKw` objects: `(handle, live flag, point,
    /// keywords)` tuples — used for both the insertion buffer and each
    /// block's retained source.
    pub const DYN_OBJECTS: u16 = 21;
}

/// FNV-1a, 64-bit — the per-section checksum of DESIGN.md §15.
/// Std-only and byte-order-free; collision resistance is not a goal
/// (checksums here detect accidental corruption, not adversaries).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends `v` as an LEB128 varint (7 bits per byte, little-endian,
/// high bit = continuation).
pub fn put_uv(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends an `f64` as the 8 little-endian bytes of its bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, x: f64) {
    buf.extend_from_slice(&x.to_bits().to_le_bytes());
}

/// Appends a document as `len` + delta-coded ascending keywords.
pub(crate) fn put_doc(buf: &mut Vec<u8>, doc: &Document) {
    let kws = doc.keywords();
    put_uv(buf, kws.len() as u64);
    let mut prev = 0u64;
    for (i, &w) in kws.iter().enumerate() {
        let w = u64::from(w);
        // Keywords are sorted, distinct, and non-empty: the first is
        // raw, the rest are stored as (gap - 1).
        if i == 0 {
            put_uv(buf, w);
        } else {
            put_uv(buf, w - prev - 1);
        }
        prev = w;
    }
}

struct Page {
    kind: u16,
    version: u16,
    payload: Vec<u8>,
}

/// Accumulates the pages of a snapshot; [`PageWriter::into_bytes`]
/// assembles the file (header, then every page in append order).
#[derive(Default)]
pub struct PageWriter {
    pages: Vec<Page>,
}

impl PageWriter {
    /// A writer with no pages.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one page. `version` is the schema version the payload
    /// was encoded under — implementations pass [`SCHEMA_VERSION`].
    pub fn page(&mut self, kind: u16, version: u16, payload: Vec<u8>) {
        self.pages.push(Page {
            kind,
            version,
            payload,
        });
    }

    /// Number of pages appended so far.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no pages have been appended.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Assembles the snapshot bytes: file header, then each page as a
    /// 24-byte header plus payload.
    pub fn into_bytes(self) -> Result<Vec<u8>, SkqError> {
        let page_count = u32::try_from(self.pages.len()).map_err(|_| SkqError::Store {
            backend: "save".into(),
            message: format!(
                "snapshot has {} pages; the format caps at 2^32",
                self.pages.len()
            ),
        })?;
        let total: usize = FILE_HEADER_BYTES
            + self
                .pages
                .iter()
                .map(|p| PAGE_HEADER_BYTES + p.payload.len())
                .sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&FILE_MAGIC);
        out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.extend_from_slice(&page_count.to_le_bytes());
        let header_sum = fnv1a64(&out[..16]);
        out.extend_from_slice(&header_sum.to_le_bytes());
        for (i, p) in self.pages.iter().enumerate() {
            let len = u32::try_from(p.payload.len()).map_err(|_| SkqError::Store {
                backend: "save".into(),
                message: format!("page {i} payload exceeds 2^32 bytes"),
            })?;
            out.extend_from_slice(&PAGE_MAGIC);
            out.extend_from_slice(&p.kind.to_le_bytes());
            out.extend_from_slice(&p.version.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&(i as u32).to_le_bytes());
            out.extend_from_slice(&fnv1a64(&p.payload).to_le_bytes());
            out.extend_from_slice(&p.payload);
        }
        Ok(out)
    }
}

/// Walks the pages of a snapshot byte stream, validating the file
/// header on construction and every page header, kind, version,
/// position, and checksum as pages are consumed.
pub struct PageReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    next_index: u32,
    page_count: u32,
}

fn corrupt(section: &str, detail: impl Into<String>) -> SkqError {
    SkqError::Corrupted {
        section: section.into(),
        detail: detail.into(),
    }
}

impl<'a> PageReader<'a> {
    /// Validates the file header (length, magic, schema version,
    /// header checksum) and positions the reader at the first page.
    ///
    /// # Errors
    ///
    /// [`SkqError::Corrupted`] (section `header`) on a short file,
    /// wrong magic, a schema version other than [`SCHEMA_VERSION`], or
    /// a header checksum mismatch.
    pub fn new(bytes: &'a [u8]) -> Result<Self, SkqError> {
        if bytes.len() < FILE_HEADER_BYTES {
            return Err(corrupt(
                "header",
                format!(
                    "file is {} bytes, shorter than the {FILE_HEADER_BYTES}-byte header",
                    bytes.len()
                ),
            ));
        }
        if bytes[..8] != FILE_MAGIC {
            return Err(corrupt("header", "bad file magic (not a skq snapshot)"));
        }
        let schema = u16::from_le_bytes([bytes[8], bytes[9]]);
        if schema != SCHEMA_VERSION {
            return Err(corrupt(
                "header",
                format!(
                    "snapshot schema version {schema} is not the supported version {SCHEMA_VERSION}"
                ),
            ));
        }
        let page_count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
        let stored_sum = u64::from_le_bytes(
            bytes[16..24]
                .try_into()
                .map_err(|_| corrupt("header", "unreachable: header slice is 8 bytes"))?,
        );
        if stored_sum != fnv1a64(&bytes[..16]) {
            return Err(corrupt("header", "file header checksum mismatch"));
        }
        Ok(Self {
            bytes,
            pos: FILE_HEADER_BYTES,
            next_index: 0,
            page_count,
        })
    }

    /// Kind of the next page, if a well-formed page header follows.
    /// Purely a peek: does not consume anything or validate payloads.
    pub fn peek_kind(&self) -> Option<u16> {
        let h = self.bytes.get(self.pos..self.pos + PAGE_HEADER_BYTES)?;
        if h[..4] != PAGE_MAGIC {
            return None;
        }
        Some(u16::from_le_bytes([h[4], h[5]]))
    }

    /// Consumes the next page, which must be of the given `kind` and
    /// `version`, returning a cursor over its payload. `section` names
    /// the logical section for error messages.
    ///
    /// # Errors
    ///
    /// [`SkqError::Corrupted`] on truncation, bad page magic, an
    /// unexpected kind/version/position, a payload checksum mismatch,
    /// or more pages than the file header declared.
    /// [`SkqError::Internal`] if the `store::read_page` fail point is
    /// armed (chaos tests).
    pub fn page(
        &mut self,
        kind: u16,
        version: u16,
        section: &'static str,
    ) -> Result<Dec<'a>, SkqError> {
        failpoints::check("store::read_page")?;
        if self.next_index >= self.page_count {
            return Err(corrupt(
                section,
                format!(
                    "expected a page of kind {kind}, but all {} declared pages are consumed",
                    self.page_count
                ),
            ));
        }
        let h = self
            .bytes
            .get(self.pos..self.pos + PAGE_HEADER_BYTES)
            .ok_or_else(|| corrupt(section, "file truncated inside a page header"))?;
        if h[..4] != PAGE_MAGIC {
            return Err(corrupt(section, "bad page magic"));
        }
        let got_kind = u16::from_le_bytes([h[4], h[5]]);
        if got_kind != kind {
            return Err(corrupt(
                section,
                format!("expected page kind {kind}, found {got_kind}"),
            ));
        }
        let got_version = u16::from_le_bytes([h[6], h[7]]);
        if got_version != version {
            return Err(corrupt(
                section,
                format!("page schema version {got_version} does not match expected {version}"),
            ));
        }
        let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]) as usize;
        let index = u32::from_le_bytes([h[12], h[13], h[14], h[15]]);
        if index != self.next_index {
            return Err(corrupt(
                section,
                format!(
                    "page declares position {index}, expected {}",
                    self.next_index
                ),
            ));
        }
        let stored_sum =
            u64::from_le_bytes([h[16], h[17], h[18], h[19], h[20], h[21], h[22], h[23]]);
        let start = self.pos + PAGE_HEADER_BYTES;
        let payload = self
            .bytes
            .get(start..start + len)
            .ok_or_else(|| corrupt(section, "file truncated inside a page payload"))?;
        if fnv1a64(payload) != stored_sum {
            return Err(corrupt(section, "page payload checksum mismatch"));
        }
        self.pos = start + len;
        self.next_index += 1;
        Ok(Dec {
            buf: payload,
            pos: 0,
            section,
        })
    }

    /// Asserts every declared page was consumed and no bytes trail the
    /// last one.
    ///
    /// # Errors
    ///
    /// [`SkqError::Corrupted`] (section `trailer`) if pages remain
    /// unread or trailing bytes follow the final page.
    pub fn finish(&self) -> Result<(), SkqError> {
        if self.next_index != self.page_count {
            return Err(corrupt(
                "trailer",
                format!(
                    "decoded {} of {} declared pages",
                    self.next_index, self.page_count
                ),
            ));
        }
        if self.pos != self.bytes.len() {
            return Err(corrupt(
                "trailer",
                format!(
                    "{} trailing bytes after the last page",
                    self.bytes.len() - self.pos
                ),
            ));
        }
        Ok(())
    }
}

/// Cursor over one page payload. Every accessor is bounds-checked and
/// returns [`SkqError::Corrupted`] tagged with the section name —
/// decoding never panics, whatever the bytes.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl Dec<'_> {
    fn fail(&self, detail: impl Into<String>) -> SkqError {
        corrupt(self.section, detail)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`SkqError::Corrupted`] on truncation or a varint longer than
    /// 10 bytes / overflowing 64 bits.
    pub fn uv(&mut self) -> Result<u64, SkqError> {
        let mut v: u64 = 0;
        for i in 0..10 {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| self.fail("payload truncated inside a varint"))?;
            self.pos += 1;
            let part = u64::from(byte & 0x7f);
            if i == 9 && part > 1 {
                return Err(self.fail("varint overflows 64 bits"));
            }
            v |= part << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.fail("varint longer than 10 bytes"))
    }

    /// Reads a varint that must fit in `u32`.
    ///
    /// # Errors
    ///
    /// As [`Dec::uv`], plus values above `u32::MAX`.
    pub fn u32v(&mut self) -> Result<u32, SkqError> {
        let v = self.uv()?;
        u32::try_from(v).map_err(|_| self.fail(format!("value {v} does not fit in u32")))
    }

    /// Reads a varint as `usize`.
    ///
    /// # Errors
    ///
    /// As [`Dec::uv`], plus values above `usize::MAX`.
    pub fn usizev(&mut self) -> Result<usize, SkqError> {
        let v = self.uv()?;
        usize::try_from(v).map_err(|_| self.fail(format!("value {v} does not fit in usize")))
    }

    /// Reads an element count declared to precede elements of at least
    /// `min_elem_bytes` each, rejecting counts the remaining payload
    /// cannot possibly hold — the guard that keeps a bit-flipped
    /// length from driving a huge allocation.
    ///
    /// # Errors
    ///
    /// As [`Dec::uv`], plus implausibly large counts.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, SkqError> {
        let n = self.usizev()?;
        let per = min_elem_bytes.max(1);
        if n > self.remaining() / per {
            return Err(self.fail(format!(
                "declared count {n} exceeds what {} remaining bytes can hold",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a raw little-endian `u64` (8 bytes, no varint coding) —
    /// used for dense bitmap words.
    ///
    /// # Errors
    ///
    /// [`SkqError::Corrupted`] on truncation.
    pub fn u64_raw(&mut self) -> Result<u64, SkqError> {
        let b = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or_else(|| self.fail("payload truncated inside a u64 word"))?;
        self.pos += 8;
        let arr: [u8; 8] = b
            .try_into()
            .map_err(|_| self.fail("unreachable: u64 slice is 8 bytes"))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads an `f64` (8 little-endian bytes of its bit pattern).
    ///
    /// # Errors
    ///
    /// [`SkqError::Corrupted`] on truncation.
    pub fn f64(&mut self) -> Result<f64, SkqError> {
        let b = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or_else(|| self.fail("payload truncated inside an f64"))?;
        self.pos += 8;
        let arr: [u8; 8] = b
            .try_into()
            .map_err(|_| self.fail("unreachable: f64 slice is 8 bytes"))?;
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    /// Reads a document written by `put_doc`, validating that it is
    /// non-empty and its keywords fit `u32`.
    ///
    /// # Errors
    ///
    /// [`SkqError::Corrupted`] on truncation, an empty document, or a
    /// keyword overflowing `u32`.
    pub(crate) fn doc(&mut self) -> Result<Document, SkqError> {
        let n = self.len(1)?;
        if n == 0 {
            return Err(self.fail("document has no keywords"));
        }
        let mut kws = Vec::with_capacity(n);
        let mut prev: u64 = 0;
        for i in 0..n {
            let delta = self.uv()?;
            let w = if i == 0 { delta } else { prev + delta + 1 };
            let kw = u32::try_from(w)
                .map_err(|_| self.fail(format!("keyword {w} does not fit in u32")))?;
            kws.push(kw);
            prev = w;
        }
        // Delta coding guarantees strictly ascending order, which is
        // exactly `Document::new`'s normal form — no panic possible.
        Ok(Document::new(kws))
    }

    /// Asserts the payload is fully consumed.
    ///
    /// # Errors
    ///
    /// [`SkqError::Corrupted`] if bytes remain.
    pub fn end(&self) -> Result<(), SkqError> {
        if self.pos != self.buf.len() {
            return Err(self.fail(format!(
                "{} unconsumed bytes at the end of the page",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// The snapshot surface: types that can write themselves as pages and
/// reconstruct themselves — with full validation — from pages.
///
/// Implementations must be deterministic (same value → same bytes) and
/// must never panic in `from_pages`, whatever the input: every decoded
/// quantity is validated before use, and violations surface as
/// [`SkqError::Corrupted`].
pub trait Persist: Sized {
    /// Appends this value's pages to `w`.
    ///
    /// # Errors
    ///
    /// [`SkqError::Store`] if the value contains a variant the paged
    /// format does not encode (e.g. a dimension-reduction tree).
    fn to_pages(&self, w: &mut PageWriter) -> Result<(), SkqError>;

    /// Reconstructs a value by consuming its pages from `r`.
    ///
    /// # Errors
    ///
    /// [`SkqError::Corrupted`] on any malformed or invariant-violating
    /// input.
    fn from_pages(r: &mut PageReader<'_>) -> Result<Self, SkqError>;

    /// Serializes to a complete snapshot byte vector.
    ///
    /// # Errors
    ///
    /// As [`Persist::to_pages`].
    fn to_bytes(&self) -> Result<Vec<u8>, SkqError> {
        let mut w = PageWriter::new();
        self.to_pages(&mut w)?;
        w.into_bytes()
    }

    /// Serializes to a complete snapshot and writes it to `out`.
    ///
    /// # Errors
    ///
    /// As [`Persist::to_pages`]; I/O failures surface as
    /// [`SkqError::Store`] with backend `io`.
    fn to_writer(&self, out: &mut dyn Write) -> Result<(), SkqError> {
        let bytes = self.to_bytes()?;
        out.write_all(&bytes).map_err(|e| SkqError::Store {
            backend: "io".into(),
            message: e.to_string(),
        })
    }

    /// Deserializes from complete snapshot bytes, requiring every page
    /// to be consumed.
    ///
    /// # Errors
    ///
    /// [`SkqError::Corrupted`] on any malformed input, including
    /// unconsumed trailing pages.
    fn try_from_bytes(bytes: &[u8]) -> Result<Self, SkqError> {
        let mut r = PageReader::new(bytes)?;
        let value = Self::from_pages(&mut r)?;
        r.finish()?;
        Ok(value)
    }

    /// Reads `input` to its end and deserializes a snapshot from it.
    ///
    /// # Errors
    ///
    /// As [`Persist::try_from_bytes`]; I/O failures surface as
    /// [`SkqError::Store`] with backend `io`.
    fn try_from_reader(input: &mut dyn Read) -> Result<Self, SkqError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes).map_err(|e| SkqError::Store {
            backend: "io".into(),
            message: e.to_string(),
        })?;
        Self::try_from_bytes(&bytes)
    }
}

/// Points per `DATASET_POINTS`/`TREE_POINTS`/`NN_POINTS` page.
pub(crate) const POINTS_PER_PAGE: usize = 4096;
/// Documents per `DATASET_DOCS`/`TREE_DOCS` page.
pub(crate) const DOCS_PER_PAGE: usize = 4096;
/// Target payload bytes per `POSTINGS_CHUNK` page.
const POSTINGS_PAGE_BYTES: usize = 48 * 1024;

/// Encodes `points[chunk]` (all of dimension `dim`) into page payloads
/// of the given kind.
pub(crate) fn put_point_pages(
    w: &mut PageWriter,
    kind: u16,
    points: &[skq_geom::Point],
    dim: usize,
) {
    for chunk in points.chunks(POINTS_PER_PAGE.max(1)) {
        let mut buf = Vec::with_capacity(chunk.len() * dim * 8);
        for p in chunk {
            for i in 0..dim {
                put_f64(&mut buf, p.get(i));
            }
        }
        w.page(kind, SCHEMA_VERSION, buf);
    }
}

/// Decodes `n` points of dimension `dim` written by
/// [`put_point_pages`], without constraining coordinate values (the
/// caller validates finiteness where its invariants require it).
pub(crate) fn read_point_pages(
    r: &mut PageReader<'_>,
    kind: u16,
    section: &'static str,
    n: usize,
    dim: usize,
) -> Result<Vec<skq_geom::Point>, SkqError> {
    if !(1..=skq_geom::MAX_DIM).contains(&dim) {
        return Err(corrupt(
            section,
            format!(
                "point dimensionality {dim} outside 1..={}",
                skq_geom::MAX_DIM
            ),
        ));
    }
    let mut points = Vec::with_capacity(n.min(1 << 20));
    let mut coords = [0.0f64; skq_geom::MAX_DIM];
    let mut remaining = n;
    while remaining > 0 {
        let mut d = r.page(kind, SCHEMA_VERSION, section)?;
        let in_page = remaining.min(POINTS_PER_PAGE);
        for _ in 0..in_page {
            for c in coords.iter_mut().take(dim) {
                *c = d.f64()?;
            }
            points.push(skq_geom::Point::new(&coords[..dim]));
        }
        d.end()?;
        remaining -= in_page;
    }
    Ok(points)
}

/// Encodes `docs` into document pages of the given kind.
pub(crate) fn put_doc_pages(w: &mut PageWriter, kind: u16, docs: &[Document]) {
    for chunk in docs.chunks(DOCS_PER_PAGE.max(1)) {
        let mut buf = Vec::new();
        for doc in chunk {
            put_doc(&mut buf, doc);
        }
        w.page(kind, SCHEMA_VERSION, buf);
    }
}

/// Decodes `n` documents written by [`put_doc_pages`].
pub(crate) fn read_doc_pages(
    r: &mut PageReader<'_>,
    kind: u16,
    section: &'static str,
    n: usize,
) -> Result<Vec<Document>, SkqError> {
    let mut docs = Vec::with_capacity(n.min(1 << 20));
    let mut remaining = n;
    while remaining > 0 {
        let mut d = r.page(kind, SCHEMA_VERSION, section)?;
        let in_page = remaining.min(DOCS_PER_PAGE);
        for _ in 0..in_page {
            docs.push(d.doc()?);
        }
        d.end()?;
        remaining -= in_page;
    }
    Ok(docs)
}

impl Persist for InvertedIndex {
    fn to_pages(&self, w: &mut PageWriter) -> Result<(), SkqError> {
        // `entries()` iterates in ascending keyword order, so the
        // byte stream is independent of hash-map iteration order.
        let entries: Vec<(Keyword, &[ObjectId])> = self.entries().collect();
        let mut chunks: Vec<Vec<u8>> = Vec::new();
        let mut buf = Vec::new();
        let mut in_chunk = 0u64;
        for (kw, ids) in &entries {
            put_uv(&mut buf, u64::from(*kw));
            put_uv(&mut buf, ids.len() as u64);
            let mut prev = 0u64;
            for (i, &id) in ids.iter().enumerate() {
                let id = u64::from(id);
                if i == 0 {
                    put_uv(&mut buf, id);
                } else {
                    put_uv(&mut buf, id - prev - 1);
                }
                prev = id;
            }
            in_chunk += 1;
            if buf.len() >= POSTINGS_PAGE_BYTES {
                let mut page = Vec::with_capacity(buf.len() + 4);
                put_uv(&mut page, in_chunk);
                page.extend_from_slice(&buf);
                chunks.push(page);
                buf.clear();
                in_chunk = 0;
            }
        }
        if in_chunk > 0 || chunks.is_empty() {
            let mut page = Vec::with_capacity(buf.len() + 4);
            put_uv(&mut page, in_chunk);
            page.extend_from_slice(&buf);
            chunks.push(page);
        }
        let mut head = Vec::new();
        put_uv(&mut head, self.num_objects() as u64);
        put_uv(&mut head, entries.len() as u64);
        put_uv(&mut head, chunks.len() as u64);
        w.page(kind::POSTINGS_HEAD, SCHEMA_VERSION, head);
        for c in chunks {
            w.page(kind::POSTINGS_CHUNK, SCHEMA_VERSION, c);
        }
        Ok(())
    }

    fn from_pages(r: &mut PageReader<'_>) -> Result<Self, SkqError> {
        let mut head = r.page(kind::POSTINGS_HEAD, SCHEMA_VERSION, "postings")?;
        let num_objects = head.usizev()?;
        let num_lists = head.usizev()?;
        let num_chunks = head.usizev()?;
        head.end()?;
        let mut lists: Vec<(Keyword, Vec<ObjectId>)> = Vec::with_capacity(num_lists.min(1 << 20));
        for _ in 0..num_chunks {
            let mut d = r.page(kind::POSTINGS_CHUNK, SCHEMA_VERSION, "postings")?;
            let in_chunk = d.len(2)?;
            for _ in 0..in_chunk {
                let kw = d.u32v()?;
                if let Some((last, _)) = lists.last() {
                    if kw <= *last {
                        return Err(corrupt(
                            "postings",
                            format!("keyword {kw} out of ascending order"),
                        ));
                    }
                }
                let len = d.len(1)?;
                let mut ids = Vec::with_capacity(len);
                let mut prev = 0u64;
                for i in 0..len {
                    let delta = d.uv()?;
                    let id = if i == 0 { delta } else { prev + delta + 1 };
                    let id = u32::try_from(id).map_err(|_| {
                        corrupt("postings", format!("object id {id} does not fit in u32"))
                    })?;
                    ids.push(id);
                    prev = u64::from(id);
                }
                lists.push((kw, ids));
            }
            d.end()?;
        }
        if lists.len() != num_lists {
            return Err(corrupt(
                "postings",
                format!("decoded {} lists, head declared {num_lists}", lists.len()),
            ));
        }
        InvertedIndex::try_from_postings(lists, num_objects).map_err(|e| corrupt("postings", e))
    }
}

impl Persist for RankSpace {
    fn to_pages(&self, w: &mut PageWriter) -> Result<(), SkqError> {
        let mut head = Vec::new();
        put_uv(&mut head, self.dim() as u64);
        put_uv(&mut head, self.len() as u64);
        w.page(kind::RANK_HEAD, SCHEMA_VERSION, head);
        for col in self.columns() {
            let mut buf = Vec::with_capacity(col.len() * 12);
            for &(coord, id) in col {
                put_f64(&mut buf, coord);
                put_uv(&mut buf, u64::from(id));
            }
            w.page(kind::RANK_COLUMN, SCHEMA_VERSION, buf);
        }
        Ok(())
    }

    fn from_pages(r: &mut PageReader<'_>) -> Result<Self, SkqError> {
        let mut head = r.page(kind::RANK_HEAD, SCHEMA_VERSION, "rank")?;
        let dim = head.usizev()?;
        let n = head.usizev()?;
        head.end()?;
        if !(1..=skq_geom::MAX_DIM).contains(&dim) {
            return Err(corrupt(
                "rank",
                format!(
                    "rank-space dimensionality {dim} outside 1..={}",
                    skq_geom::MAX_DIM
                ),
            ));
        }
        let mut columns = Vec::with_capacity(dim);
        for _ in 0..dim {
            let mut d = r.page(kind::RANK_COLUMN, SCHEMA_VERSION, "rank")?;
            if n > d.remaining() / 9 {
                return Err(corrupt(
                    "rank",
                    format!("column page too short for {n} entries"),
                ));
            }
            let mut col = Vec::with_capacity(n);
            for _ in 0..n {
                let coord = d.f64()?;
                let id = d.u32v()?;
                col.push((coord, id));
            }
            d.end()?;
            columns.push(col);
        }
        // `try_from_columns` re-validates the sort order, the id
        // permutation, and NaN-freeness, then rebuilds the rank points.
        RankSpace::try_from_columns(columns).map_err(|e| corrupt("rank", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_across_widths() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &v in &values {
            put_uv(&mut buf, v);
        }
        let mut d = Dec {
            buf: &buf,
            pos: 0,
            section: "test",
        };
        for &v in &values {
            assert_eq!(d.uv().unwrap(), v);
        }
        d.end().unwrap();
    }

    #[test]
    fn f64_round_trips_including_infinities() {
        let mut buf = Vec::new();
        for x in [0.0, -1.5, f64::INFINITY, f64::NEG_INFINITY, 1e300] {
            put_f64(&mut buf, x);
        }
        let mut d = Dec {
            buf: &buf,
            pos: 0,
            section: "test",
        };
        for x in [0.0, -1.5, f64::INFINITY, f64::NEG_INFINITY, 1e300] {
            assert_eq!(d.f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn truncated_varint_is_corrupted_not_panic() {
        let buf = [0x80u8]; // continuation bit set, nothing follows
        let mut d = Dec {
            buf: &buf,
            pos: 0,
            section: "test",
        };
        assert!(matches!(d.uv(), Err(SkqError::Corrupted { .. })));
    }

    #[test]
    fn implausible_length_is_rejected() {
        let mut buf = Vec::new();
        put_uv(&mut buf, 1 << 40);
        let mut d = Dec {
            buf: &buf,
            pos: 0,
            section: "test",
        };
        assert!(matches!(d.len(1), Err(SkqError::Corrupted { .. })));
    }

    #[test]
    fn page_stream_round_trips() {
        let mut w = PageWriter::new();
        w.page(7, SCHEMA_VERSION, vec![1, 2, 3]);
        w.page(9, SCHEMA_VERSION, vec![]);
        let bytes = w.into_bytes().unwrap();
        let mut r = PageReader::new(&bytes).unwrap();
        assert_eq!(r.peek_kind(), Some(7));
        let mut d = r.page(7, SCHEMA_VERSION, "test").unwrap();
        assert_eq!(d.remaining(), 3);
        assert_eq!(d.uv().unwrap(), 1);
        assert_eq!(d.uv().unwrap(), 2);
        assert_eq!(d.uv().unwrap(), 3);
        d.end().unwrap();
        let d2 = r.page(9, SCHEMA_VERSION, "test").unwrap();
        d2.end().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn wrong_magic_and_future_schema_are_typed_errors() {
        let bytes = PageWriter::new().into_bytes().unwrap();
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            PageReader::new(&bad_magic),
            Err(SkqError::Corrupted { .. })
        ));
        let mut future = bytes.clone();
        future[8..10].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        // Re-stamp the header checksum so only the version is "wrong".
        let sum = fnv1a64(&future[..16]);
        future[16..24].copy_from_slice(&sum.to_le_bytes());
        let err = match PageReader::new(&future) {
            Err(e) => e,
            Ok(_) => panic!("future schema version accepted"),
        };
        assert!(err.to_string().contains("schema version"), "{err}");
    }

    #[test]
    fn flipped_payload_bit_fails_the_page_checksum() {
        let mut w = PageWriter::new();
        w.page(1, SCHEMA_VERSION, vec![42; 64]);
        let mut bytes = w.into_bytes().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut r = PageReader::new(&bytes).unwrap();
        assert!(matches!(
            r.page(1, SCHEMA_VERSION, "test"),
            Err(SkqError::Corrupted { .. })
        ));
    }
}
