//! Shared concurrency plumbing.
//!
//! Every parallel surface in the workspace — [`crate::batch`]'s sharded
//! execution and `skq-serve`'s worker pool — needs the same two small
//! decisions made the same way: what a thread count of zero means, and
//! what to default to when the caller expresses no preference. This
//! module is the single home for both, so the clamping semantics cannot
//! drift between layers.

/// Clamps a requested thread count to something that makes progress.
///
/// A zero-width pool (or zero-shard batch) would never complete any
/// work, so the nearest meaningful interpretation of `0` is sequential
/// execution on one thread. Every other request is taken at face value
/// — oversubscription is the caller's informed choice (the batch tests
/// deliberately run 64 shards on small machines).
#[inline]
#[must_use]
pub fn effective_threads(requested: usize) -> usize {
    requested.max(1)
}

/// The machine's available parallelism, for callers that want a
/// hardware-sized default rather than an explicit count.
///
/// Falls back to 1 when the platform cannot report a value (the
/// documented `available_parallelism` failure mode), so the result is
/// always a valid input to a pool constructor.
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clamps_to_one() {
        assert_eq!(effective_threads(0), 1);
    }

    #[test]
    fn positive_counts_pass_through() {
        for t in [1usize, 2, 3, 8, 64, 1024] {
            assert_eq!(effective_threads(t), t);
        }
    }

    #[test]
    fn available_is_always_usable() {
        let t = available_threads();
        assert!(t >= 1);
        assert_eq!(effective_threads(t), t);
    }
}
