//! Linear conjunction with keywords (LC-KW; Theorem 5).
//!
//! A query supplies `s = O(1)` linear constraints `Σᵢ cᵢ·x[i] ≤ c_{d+1}`
//! plus `k` keywords; the answer is every matching object satisfying all
//! constraints. The paper reduces LC-KW to SP-KW by partitioning the
//! constraint polyhedron into `O(1)` simplices; since our SP-KW index
//! ([`SpKwIndex`]) answers arbitrary halfspace conjunctions directly
//! (the framework only needs cell-vs-region classification), the
//! decomposition step is unnecessary and the constraints are passed
//! through unchanged — the same `O(1)` factor, one query instead of
//! several.
//!
//! LC-KW also gives an alternative linear-space ORP-KW index (a
//! `d`-rectangle is `2d` linear constraints), realizing Table 1's
//! "`d ≤ k`, `O(N)` space" row: see [`LcKwIndex::query_rect`].

use std::ops::ControlFlow;

use skq_geom::{ConvexPolytope, Halfspace, Rect};
use skq_invidx::Keyword;

use crate::dataset::Dataset;
use crate::error::SkqError;
use crate::failpoints;
use crate::sink::ResultSink;
use crate::sp::{SpKwIndex, SpStrategy};
use crate::stats::QueryStats;

/// The LC-KW index.
pub struct LcKwIndex {
    sp: SpKwIndex,
}

impl LcKwIndex {
    /// Builds the index for exactly-`k`-keyword queries.
    pub fn build(dataset: &Dataset, k: usize) -> Self {
        Self::try_build(dataset, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if `k` is outside `2..=16`.
    pub fn try_build(dataset: &Dataset, k: usize) -> Result<Self, SkqError> {
        failpoints::check("lc::build")?;
        Ok(Self {
            sp: SpKwIndex::try_build(dataset, k)?,
        })
    }

    /// Fallible [`build`](Self::build) with a space-admission budget
    /// (see [`SpKwIndex::try_build_with_budget`]). The planner uses
    /// this as the linear-space middle tier of its degradation ladder.
    ///
    /// # Errors
    ///
    /// `SkqError::BuildBudgetExceeded` when the finished index is over
    /// budget; otherwise the [`try_build`](Self::try_build) conditions.
    pub fn try_build_with_budget(
        dataset: &Dataset,
        k: usize,
        max_space_words: Option<usize>,
    ) -> Result<Self, SkqError> {
        failpoints::check("lc::build")?;
        Ok(Self {
            sp: SpKwIndex::try_build_with_budget(dataset, k, max_space_words)?,
        })
    }

    /// Builds with an explicit partition strategy.
    pub fn build_with_strategy(dataset: &Dataset, k: usize, strategy: SpStrategy) -> Self {
        Self {
            sp: SpKwIndex::build_with_strategy(dataset, k, strategy),
        }
    }

    /// The number of query keywords the index was built for.
    pub fn k(&self) -> usize {
        self.sp.k()
    }

    /// Reports objects satisfying all `constraints` and containing all
    /// `keywords`.
    pub fn query(&self, constraints: &[Halfspace], keywords: &[Keyword]) -> Vec<u32> {
        self.sp
            .query_polytope(&ConvexPolytope::new(constraints.to_vec()), keywords)
    }

    /// Like [`query`](Self::query) with statistics.
    pub fn query_with_stats(
        &self,
        constraints: &[Halfspace],
        keywords: &[Keyword],
    ) -> (Vec<u32>, QueryStats) {
        self.sp
            .query_with_stats(&ConvexPolytope::new(constraints.to_vec()), keywords)
    }

    /// Fallible query: validates the constraints and keyword set, then
    /// appends matching ids to `out`.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` on a dimension mismatch, NaN
    /// coefficients, or a keyword set that is not exactly `k` distinct
    /// keywords.
    pub fn try_query_into(
        &self,
        constraints: &[Halfspace],
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<QueryStats, SkqError> {
        self.sp
            .try_query_into(&ConvexPolytope::new(constraints.to_vec()), keywords, out)
    }

    /// ORP-KW through LC-KW: a `d`-rectangle is the conjunction of `2d`
    /// linear constraints (Table 1, row "`d ≤ k`": linear space with an
    /// extra `log N` additive term in the query bound).
    pub fn query_rect(&self, q: &Rect, keywords: &[Keyword]) -> Vec<u32> {
        self.sp
            .query_polytope(&ConvexPolytope::from_rect(q), keywords)
    }

    /// Limited-output variant.
    pub fn query_limited(
        &self,
        constraints: &[Halfspace],
        keywords: &[Keyword],
        limit: usize,
        out: &mut Vec<u32>,
        stats: &mut QueryStats,
    ) {
        self.sp.query_limited(
            &ConvexPolytope::new(constraints.to_vec()),
            keywords,
            limit,
            out,
            stats,
        );
    }

    /// Streaming variant: matching ids are emitted into `sink`.
    pub fn query_sink<S: ResultSink>(
        &self,
        constraints: &[Halfspace],
        keywords: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        self.sp.query_sink(
            &ConvexPolytope::new(constraints.to_vec()),
            keywords,
            sink,
            stats,
        )
    }

    /// Whether at least `t` objects match, by early termination.
    pub fn count_at_least(
        &self,
        constraints: &[Halfspace],
        keywords: &[Keyword],
        t: usize,
    ) -> bool {
        self.sp
            .count_at_least(&ConvexPolytope::new(constraints.to_vec()), keywords, t)
    }

    /// Index space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.sp.space_words()
    }

    /// Deep structural validation (`debug-invariants`; DESIGN.md §12):
    /// delegates to the inner SP-KW index.
    ///
    /// # Errors
    ///
    /// The first violated invariant, by name.
    #[cfg(feature = "debug-invariants")]
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        self.sp.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use skq_geom::Point;

    /// The paper's introductory example: hotels with price, rating, and
    /// feature tags; condition C2 is `c₁·price + c₂·(10 − rating) ≤ c₃`.
    #[test]
    fn intro_example_condition_c2() {
        const POOL: u32 = 0;
        const PARKING: u32 = 1;
        const PETS: u32 = 2;
        let hotels = Dataset::from_parts(vec![
            (Point::new2(100.0, 9.0), vec![POOL, PARKING, PETS]),
            (Point::new2(250.0, 9.5), vec![POOL, PARKING, PETS]),
            (Point::new2(120.0, 6.0), vec![POOL, PARKING, PETS]),
            (Point::new2(110.0, 8.5), vec![POOL]),
        ]);
        let index = LcKwIndex::build(&hotels, 3);
        // price + 50·(10 − rating) ≤ 200  ⇔  price − 50·rating ≤ −300.
        let c2 = Halfspace::new(&[1.0, -50.0], -300.0);
        let mut got = index.query(&[c2], &[POOL, PARKING, PETS]);
        got.sort_unstable();
        // Hotel 0: 100 − 450 = −350 ✓; hotel 1: 250 − 475 = −225 ✗;
        // hotel 2: 120 − 300 = −180 ✗; hotel 3: keywords missing.
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn rect_through_lc_matches_direct() {
        use crate::orp::OrpKwIndex;
        let mut rng = StdRng::seed_from_u64(7);
        let dataset = Dataset::from_parts(
            (0..300)
                .map(|_| {
                    let p = Point::new2(rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0));
                    let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                        .map(|_| rng.gen_range(0..8))
                        .collect();
                    (p, doc)
                })
                .collect(),
        );
        let lc = LcKwIndex::build(&dataset, 2);
        let orp = OrpKwIndex::build(&dataset, 2);
        for _ in 0..40 {
            let x0: f64 = rng.gen_range(-25.0..25.0);
            let x1: f64 = rng.gen_range(-25.0..25.0);
            let y0: f64 = rng.gen_range(-25.0..25.0);
            let y1: f64 = rng.gen_range(-25.0..25.0);
            let q = Rect::new(&[x0.min(x1), y0.min(y1)], &[x0.max(x1), y0.max(y1)]);
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            let mut a = lc.query_rect(&q, &[w1, w2]);
            let mut b = orp.query(&q, &[w1, w2]);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn try_surfaces_round_trip() {
        let mut rng = StdRng::seed_from_u64(77);
        let dataset = Dataset::from_parts(
            (0..150)
                .map(|_| {
                    let p = Point::new2(rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0));
                    let doc: Vec<Keyword> = (0..rng.gen_range(1..4))
                        .map(|_| rng.gen_range(0..6))
                        .collect();
                    (p, doc)
                })
                .collect(),
        );
        let index = LcKwIndex::try_build(&dataset, 2).unwrap();
        let legacy = LcKwIndex::build(&dataset, 2);
        let cs = [Halfspace::new(&[1.0, 1.0], 5.0)];
        let mut out = Vec::new();
        index.try_query_into(&cs, &[0, 1], &mut out).unwrap();
        let mut expected = legacy.query(&cs, &[0, 1]);
        out.sort_unstable();
        expected.sort_unstable();
        assert_eq!(out, expected);
        // Validation surfaces.
        assert!(matches!(
            LcKwIndex::try_build(&dataset, 1),
            Err(SkqError::InvalidQuery(_))
        ));
        let mut scratch = Vec::new();
        assert!(matches!(
            index.try_query_into(&cs, &[0, 0], &mut scratch),
            Err(SkqError::InvalidQuery(_))
        ));
        assert!(matches!(
            LcKwIndex::try_build_with_budget(&dataset, 2, Some(1)),
            Err(SkqError::BuildBudgetExceeded { .. })
        ));
    }

    #[test]
    fn higher_dimensional_constraints() {
        let mut rng = StdRng::seed_from_u64(17);
        let dataset = Dataset::from_parts(
            (0..200)
                .map(|_| {
                    let coords: Vec<f64> = (0..4).map(|_| rng.gen_range(-10.0..10.0)).collect();
                    let doc: Vec<Keyword> = (0..rng.gen_range(1..4))
                        .map(|_| rng.gen_range(0..6))
                        .collect();
                    (Point::new(&coords), doc)
                })
                .collect(),
        );
        let index = LcKwIndex::build(&dataset, 2);
        let cs = [
            Halfspace::new(&[1.0, 1.0, 1.0, 1.0], 5.0),
            Halfspace::new(&[-1.0, 0.5, 0.0, 0.0], 3.0),
        ];
        let mut got = index.query(&cs, &[0, 1]);
        got.sort_unstable();
        let expected: Vec<u32> = (0..dataset.len() as u32)
            .filter(|&i| {
                dataset.doc(i as usize).contains_all(&[0, 1])
                    && cs.iter().all(|h| h.contains(dataset.point(i as usize)))
            })
            .collect();
        assert_eq!(got, expected);
    }
}
