//! A multi-`k` index suite.
//!
//! Every index in this crate is built for a fixed number of query
//! keywords `k` — the large/small threshold `N_u^{1−1/k}` bakes `k`
//! into the structure. Applications rarely know `k` in advance, so
//! [`OrpKwSuite`] builds one index per `k ∈ 2..=k_max` plus an
//! inverted-index fallback for single-keyword (or very-many-keyword)
//! queries, and routes each query to the right member.
//!
//! Space grows by the factor `k_max − 1`, which is `O(1)` under the
//! paper's constant-`k` regime.

use std::ops::ControlFlow;

use skq_geom::Rect;
use skq_invidx::{InvertedIndex, Keyword};

use crate::dataset::Dataset;
use crate::error::{validate, SkqError};
use crate::guard::{GuardedSink, QueryGuard};
use crate::orp::OrpKwIndex;
use crate::persist::{self, Persist, SCHEMA_VERSION};
use crate::sink::{FilterSink, ResultSink};
use crate::stats::QueryStats;
use crate::telemetry;

/// ORP-KW for any number of distinct query keywords in `1..=k_max`
/// (and graceful degradation beyond).
///
/// # Example
///
/// ```
/// use skq_core::dataset::Dataset;
/// use skq_core::suite::OrpKwSuite;
/// use skq_geom::{Point, Rect};
///
/// let data = Dataset::from_parts(vec![
///     (Point::new2(1.0, 1.0), vec![0, 1, 2]),
///     (Point::new2(2.0, 2.0), vec![0, 1]),
/// ]);
/// let suite = OrpKwSuite::build(&data, 3);
/// let q = Rect::full(2);
/// assert_eq!(suite.query(&q, &[0]).len(), 2);        // k = 1 fallback
/// assert_eq!(suite.query(&q, &[0, 1]).len(), 2);     // k = 2 index
/// assert_eq!(suite.query(&q, &[0, 1, 2]), vec![0]);  // k = 3 index
/// ```
pub struct OrpKwSuite {
    /// `indexes[i]` serves `k = i + 2`.
    indexes: Vec<OrpKwIndex>,
    inv: InvertedIndex,
    dataset: Dataset,
    k_max: usize,
}

impl OrpKwSuite {
    /// Builds indexes for every `k ∈ 2..=k_max`.
    ///
    /// # Panics
    ///
    /// Panics if `k_max < 2` or the dataset is invalid; see
    /// [`try_build`](Self::try_build) for the fallible surface.
    // The panic is this wrapper's documented contract; `try_build` is
    // the fallible surface.
    #[allow(clippy::disallowed_macros)]
    pub fn build(dataset: &Dataset, k_max: usize) -> Self {
        Self::try_build(dataset, k_max).unwrap_or_else(|e| panic!("{e}")) // skq-lint: allow(L01) documented panicking wrapper over try_build
    }

    /// Fallible build.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if `k_max < 2`, plus everything
    /// [`OrpKwIndex::try_build`] rejects.
    pub fn try_build(dataset: &Dataset, k_max: usize) -> Result<Self, SkqError> {
        if k_max < 2 {
            return Err(SkqError::InvalidQuery(
                "k_max must be at least 2".to_string(),
            ));
        }
        let indexes = (2..=k_max)
            .map(|k| OrpKwIndex::try_build(dataset, k))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            indexes,
            inv: InvertedIndex::build(dataset.docs()),
            dataset: dataset.clone(),
            k_max,
        })
    }

    /// The largest `k` with a dedicated index.
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dataset.dim()
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Whether the suite indexes no objects (never true: datasets are
    /// non-empty by construction).
    pub fn is_empty(&self) -> bool {
        self.dataset.len() == 0
    }

    /// Reports all objects in `q` containing all of `keywords`
    /// (any number of them; duplicates ignored):
    ///
    /// * `k = 0` — pure range query (inverted fallback over all ids);
    /// * `k = 1` — postings scan + geometric filter;
    /// * `2 ≤ k ≤ k_max` — the matching framework index;
    /// * `k > k_max` — the `k_max` index over the `k_max` *rarest*
    ///   keywords, then post-filtering by the rest (a safe superset).
    pub fn query(&self, q: &Rect, keywords: &[Keyword]) -> Vec<u32> {
        let span = skq_obs::Span::enter("orp.suite_query");
        let mut kws = keywords.to_vec();
        kws.sort_unstable();
        kws.dedup();
        let mut stats = QueryStats::new();
        let mut result = Vec::new();
        let (route, _) = self.dispatch(q, &kws, &mut result, &mut stats);
        stats.emitted = result.len() as u64;
        telemetry::record_query_planned(
            "orp_suite",
            kws.len(),
            Some(route),
            &stats,
            span.elapsed(),
            None,
            None,
        );
        result
    }

    /// Fallible query: validates the rectangle, then routes like
    /// [`query`](Self::query) — any number of distinct keywords is
    /// acceptable, that is the suite's job — appending the matches to
    /// `out`.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` on a dimension mismatch or NaN bounds.
    pub fn try_query_into(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<(), SkqError> {
        validate::rect_query(q, self.dataset.dim())?;
        out.extend(self.query(q, keywords));
        Ok(())
    }

    /// Streaming variant of [`query`](Self::query): matching ids are
    /// emitted into `sink` as they are found, so counting or limited
    /// queries materialize no result vector on any route.
    pub fn query_sink<S: ResultSink>(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        let mut kws = keywords.to_vec();
        kws.sort_unstable();
        kws.dedup();
        self.dispatch(q, &kws, sink, stats).1
    }

    /// Guarded variant of [`query`](Self::query): enforces the deadline
    /// / cancellation / result budget of `guard` on whatever route the
    /// keyword count selects. Results collected before a limit trips
    /// are kept (sorted), and the returned stats carry the
    /// [`truncated_reason`](QueryStats).
    pub fn query_guarded(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        guard: &QueryGuard,
    ) -> (Vec<u32>, QueryStats) {
        let span = skq_obs::Span::enter("orp.suite_query");
        let mut kws = keywords.to_vec();
        kws.sort_unstable();
        kws.dedup();
        let mut stats = QueryStats::new();
        let mut result = Vec::new();
        let (route, reason) = {
            let mut guarded = GuardedSink::new(&mut result, guard);
            let (route, _) = self.dispatch(q, &kws, &mut guarded, &mut stats);
            (route, guarded.truncated_reason())
        };
        stats.emitted = result.len() as u64;
        stats.truncated |= reason.is_some();
        stats.truncated_reason = stats.truncated_reason.or(reason);
        telemetry::record_query_planned(
            "orp_suite",
            kws.len(),
            Some(route),
            &stats,
            span.elapsed(),
            None,
            None,
        );
        result.sort_unstable();
        (result, stats)
    }

    /// Fallible variant of [`query_guarded`](Self::query_guarded) for
    /// callers (the `skq-serve` request path) that want guard trips
    /// delivered as typed errors instead of truncation markers.
    ///
    /// A result-budget trip (`with_max_results`) is *not* an error —
    /// the caller asked for at most that many results — so it is
    /// returned as a successful, truncated answer.
    ///
    /// # Errors
    ///
    /// * [`SkqError::InvalidQuery`] — the rectangle's dimensionality
    ///   does not match the index, or a bound is NaN.
    /// * [`SkqError::DeadlineExceeded`] — the guard's deadline tripped
    ///   before the traversal finished.
    /// * [`SkqError::Cancelled`] — the guard's cancel token was set.
    pub fn try_query_guarded(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        guard: &QueryGuard,
    ) -> Result<(Vec<u32>, QueryStats), SkqError> {
        validate::rect_query(q, self.dataset.dim())?;
        let (ids, stats) = self.query_guarded(q, keywords, guard);
        match stats.truncated_reason {
            Some(crate::stats::TruncatedReason::DeadlineExceeded) => {
                Err(SkqError::DeadlineExceeded)
            }
            Some(crate::stats::TruncatedReason::Cancelled) => Err(SkqError::Cancelled),
            _ => Ok((ids, stats)),
        }
    }

    /// Routes a deduped keyword set to the right member and streams the
    /// answer into `sink`. Returns the route label for telemetry.
    fn dispatch<S: ResultSink>(
        &self,
        q: &Rect,
        kws: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> (&'static str, ControlFlow<()>) {
        match kws.len() {
            0 => {
                let mut flow = ControlFlow::Continue(());
                for i in 0..self.dataset.len() as u32 {
                    stats.pivot_scans += 1;
                    if q.contains(self.dataset.point(i as usize)) {
                        stats.reported += 1;
                        if sink.emit(i).is_break() {
                            flow = ControlFlow::Break(());
                            break;
                        }
                    }
                }
                ("range_scan", flow)
            }
            1 => {
                let mut flow = ControlFlow::Continue(());
                for &i in self.inv.postings(kws[0]) {
                    stats.list_scans += 1;
                    if q.contains(self.dataset.point(i as usize)) {
                        stats.reported += 1;
                        if sink.emit(i).is_break() {
                            flow = ControlFlow::Break(());
                            break;
                        }
                    }
                }
                ("postings_filter", flow)
            }
            k if k <= self.k_max => (
                "framework",
                self.indexes[k - 2].query_sink(q, kws, sink, stats),
            ),
            _ => {
                // Use the k_max rarest keywords for the index (they
                // constrain the most), then post-filter the rest —
                // streamed through a [`FilterSink`], so the superset is
                // never materialized.
                let mut by_freq = kws.to_vec();
                by_freq.sort_by_key(|&w| self.inv.len_of(w));
                let head = by_freq[..self.k_max].to_vec();
                let mut filt = FilterSink::new(&mut *sink, |i| {
                    self.dataset.doc(i as usize).contains_all(kws)
                });
                let flow = self.indexes[self.k_max - 2].query_sink(q, &head, &mut filt, stats);
                ("post_filter", flow)
            }
        }
    }

    /// Total space across all member indexes, in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.indexes
            .iter()
            .map(OrpKwIndex::space_words)
            .sum::<usize>()
            + self.inv.input_size() * 2
    }

    /// Deep structural validation (`debug-invariants`; DESIGN.md §12):
    /// every per-`k` member index and the inverted fallback must
    /// validate.
    ///
    /// # Errors
    ///
    /// The first violated invariant, by name.
    #[cfg(feature = "debug-invariants")]
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        for index in &self.indexes {
            index.validate()?;
        }
        self.inv.validate().map_err(|detail| {
            crate::invariants::InvariantViolation::new("invidx::postings", detail)
        })
    }
    /// Decodes a suite from snapshot bytes (DESIGN.md §15) and — under
    /// the `debug-invariants` feature — deep-validates the result, so a
    /// checksum-valid but structurally inconsistent snapshot is refused
    /// rather than served.
    ///
    /// This is the load path behind `skq-store` backends and
    /// `skq-serve`'s `publish_loaded`: a page walk plus cheap
    /// cross-checks, never a rebuild.
    ///
    /// # Errors
    ///
    /// [`SkqError::Corrupted`] on any malformed section, and
    /// [`SkqError::Store`] if the snapshot was produced by an
    /// incompatible writer.
    pub fn try_load(bytes: &[u8]) -> Result<Self, SkqError> {
        let suite = Self::try_from_bytes(bytes)?;
        #[cfg(feature = "debug-invariants")]
        suite.validate().map_err(|v| SkqError::Corrupted {
            section: "validate".to_string(),
            detail: v.to_string(),
        })?;
        Ok(suite)
    }
}

impl Persist for OrpKwSuite {
    fn to_pages(&self, w: &mut persist::PageWriter) -> Result<(), SkqError> {
        let mut head = Vec::new();
        persist::put_uv(&mut head, self.k_max as u64);
        w.page(persist::kind::SUITE_HEAD, SCHEMA_VERSION, head);
        self.dataset.to_pages(w)?;
        self.inv.to_pages(w)?;
        for index in &self.indexes {
            index.to_pages(w)?;
        }
        Ok(())
    }

    fn from_pages(r: &mut persist::PageReader<'_>) -> Result<Self, SkqError> {
        let fail = |detail: String| SkqError::Corrupted {
            section: "suite".to_string(),
            detail,
        };
        let mut head = r.page(persist::kind::SUITE_HEAD, SCHEMA_VERSION, "suite")?;
        let k_max = head.usizev()?;
        head.end()?;
        if !(2..=16).contains(&k_max) {
            return Err(fail(format!("implausible k_max {k_max}")));
        }
        let dataset = Dataset::from_pages(r)?;
        let inv = InvertedIndex::from_pages(r)?;
        if inv.num_objects() != dataset.len() {
            return Err(fail(format!(
                "inverted index covers {} objects, dataset holds {}",
                inv.num_objects(),
                dataset.len()
            )));
        }
        let mut indexes = Vec::with_capacity(k_max - 1);
        for k in 2..=k_max {
            let index = OrpKwIndex::from_pages(r)?;
            if index.k() != k {
                return Err(fail(format!(
                    "member {} declares k = {}, expected {k}",
                    k - 2,
                    index.k()
                )));
            }
            if index.dim() != dataset.dim() {
                return Err(fail(format!(
                    "member k = {k} is {}D, dataset is {}D",
                    index.dim(),
                    dataset.dim()
                )));
            }
            if index.kd_num_objects() != Some(dataset.len()) {
                return Err(fail(format!(
                    "member k = {k} indexes {:?} objects, dataset holds {}",
                    index.kd_num_objects(),
                    dataset.len()
                )));
            }
            indexes.push(index);
        }
        Ok(Self {
            indexes,
            inv,
            dataset,
            k_max,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use skq_geom::Point;

    fn dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(6);
        Dataset::from_parts(
            (0..800)
                .map(|_| {
                    let p = Point::new2(rng.gen_range(0..60) as f64, rng.gen_range(0..60) as f64);
                    let doc: Vec<Keyword> = (0..rng.gen_range(2..7))
                        .map(|_| rng.gen_range(0..9))
                        .collect();
                    (p, doc)
                })
                .collect(),
        )
    }

    use crate::naive::brute_rect as brute;

    #[test]
    fn routes_each_k_correctly() {
        let d = dataset();
        let suite = OrpKwSuite::build(&d, 4);
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..80 {
            let x: f64 = rng.gen_range(0..60) as f64;
            let y: f64 = rng.gen_range(0..60) as f64;
            let q = Rect::new(&[x, y], &[x + 25.0, y + 25.0]);
            let k = rng.gen_range(0..7);
            let mut kws: Vec<Keyword> = Vec::new();
            while kws.len() < k {
                let w = rng.gen_range(0..9);
                if !kws.contains(&w) {
                    kws.push(w);
                }
            }
            let mut got = suite.query(&q, &kws);
            got.sort_unstable();
            assert_eq!(got, brute(&d, &q, &kws), "trial {trial} k={k}");
        }
    }

    #[test]
    fn duplicates_in_query_are_deduped() {
        let d = dataset();
        let suite = OrpKwSuite::build(&d, 3);
        let q = Rect::full(2);
        let mut a = suite.query(&q, &[3, 3, 5, 5]);
        a.sort_unstable();
        assert_eq!(a, brute(&d, &q, &[3, 5]));
    }

    #[test]
    fn beyond_k_max_post_filters() {
        let d = dataset();
        let suite = OrpKwSuite::build(&d, 2);
        let q = Rect::full(2);
        let kws = [0u32, 1, 2, 3, 4];
        let mut got = suite.query(&q, &kws);
        got.sort_unstable();
        assert_eq!(got, brute(&d, &q, &kws));
    }

    #[test]
    fn sink_routes_match_query() {
        use crate::sink::{CountSink, LimitSink};
        let d = dataset();
        let suite = OrpKwSuite::build(&d, 3);
        let q = Rect::new(&[10.0, 10.0], &[45.0, 45.0]);
        // One keyword set per route: range_scan, postings_filter,
        // framework, post_filter.
        for kws in [vec![], vec![4], vec![1, 2], vec![0, 1, 2, 3]] {
            let full = suite.query(&q, &kws);
            let mut count = CountSink::new();
            let mut stats = QueryStats::new();
            let _ = suite.query_sink(&q, &kws, &mut count, &mut stats);
            assert_eq!(count.count(), full.len() as u64, "kws={kws:?}");
            if full.len() >= 2 {
                let mut limited = LimitSink::new(Vec::new(), 2);
                let mut stats = QueryStats::new();
                let _ = suite.query_sink(&q, &kws, &mut limited, &mut stats);
                assert!(limited.truncated(), "kws={kws:?}");
                let got = limited.into_inner();
                assert_eq!(got.len(), 2);
                assert!(got.iter().all(|i| full.contains(i)), "kws={kws:?}");
            }
        }
    }

    #[test]
    fn try_build_rejects_bad_k_max() {
        let d = dataset();
        assert!(matches!(
            OrpKwSuite::try_build(&d, 1),
            Err(SkqError::InvalidQuery(_))
        ));
    }

    #[test]
    fn guarded_query_caps_every_route() {
        use crate::guard::QueryGuard;
        use crate::stats::TruncatedReason;
        let d = dataset();
        let suite = OrpKwSuite::build(&d, 3);
        let q = Rect::new(&[10.0, 10.0], &[45.0, 45.0]);
        for kws in [vec![], vec![4], vec![1, 2], vec![0, 1, 2, 3]] {
            let full = suite.query(&q, &kws);
            if full.len() < 3 {
                continue;
            }
            let guard = QueryGuard::new().with_max_results(2);
            let (got, stats) = suite.query_guarded(&q, &kws, &guard);
            assert_eq!(got.len(), 2, "kws={kws:?}");
            assert_eq!(stats.truncated_reason, Some(TruncatedReason::Limit));
            assert!(got.iter().all(|i| full.contains(i)), "kws={kws:?}");
        }
        // An unguarded guard leaves the answer untouched.
        let (all, stats) = suite.query_guarded(&q, &[1, 2], &QueryGuard::new());
        let mut expected = suite.query(&q, &[1, 2]);
        expected.sort_unstable();
        assert_eq!(all, expected);
        assert_eq!(stats.truncated_reason, None);
    }

    #[test]
    fn zero_keywords_is_pure_range() {
        let d = dataset();
        let suite = OrpKwSuite::build(&d, 2);
        let q = Rect::new(&[0.0, 0.0], &[30.0, 30.0]);
        let mut got = suite.query(&q, &[]);
        got.sort_unstable();
        let expected: Vec<u32> = (0..d.len() as u32)
            .filter(|&i| q.contains(d.point(i as usize)))
            .collect();
        assert_eq!(got, expected);
    }
}
