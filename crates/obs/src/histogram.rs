//! Log₂-bucketed histograms with percentile extraction.
//!
//! A histogram is 65 relaxed atomic counters: bucket 0 holds the value
//! 0 and bucket `i ≥ 1` holds values in `[2^{i−1}, 2^i − 1]`. Recording
//! is one `leading_zeros` plus one relaxed `fetch_add` — cheap enough
//! for query hot paths — and percentiles are reconstructed from the
//! bucket counts with at most 2× relative error (the bucket width),
//! which is plenty for latency telemetry.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// A concurrent log₂-bucketed histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper edge of a bucket: 0 for bucket 0, else `2^i − 1`.
#[inline]
pub fn bucket_upper_edge(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        // relaxed: independent monotonic counters on the request hot
        // path; readers snapshot them without a lock and tolerate
        // cross-field skew (count/sum/bucket totals may momentarily
        // disagree by in-flight observations).
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed: see above
        self.sum.fetch_add(value, Ordering::Relaxed); // relaxed: see above
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        // relaxed: statistical snapshot; skew vs. sum/buckets tolerated
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        // relaxed: statistical snapshot; skew vs. count tolerated
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Raw bucket counts (index `i` as in [`bucket_index`]).
    pub fn bucket_counts(&self) -> [u64; NUM_BUCKETS] {
        // relaxed: per-bucket snapshot; buckets may be torn against
        // each other by in-flight observe() calls, which quantile
        // estimation tolerates by design
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (`q ∈ [0, 1]`): the upper edge of the
    /// bucket containing the rank-`⌈q·n⌉` observation. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper_edge(i);
            }
        }
        bucket_upper_edge(NUM_BUCKETS - 1)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Upper edge of the highest non-empty bucket (0 when empty).
    pub fn max_edge(&self) -> u64 {
        let counts = self.bucket_counts();
        counts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map(|(i, _)| bucket_upper_edge(i))
            .unwrap_or(0)
    }

    /// Zeroes every bucket (used by
    /// [`MetricsRegistry::reset`](crate::MetricsRegistry::reset) for
    /// test isolation).
    pub fn clear(&self) {
        for b in &self.buckets {
            // relaxed: best-effort reset for test isolation; concurrent
            // observers may interleave, and any ordering would not stop
            // them — callers quiesce traffic first
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed); // relaxed: see above
        self.sum.store(0, Ordering::Relaxed); // relaxed: see above
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_edges_cover_their_range() {
        for v in [0u64, 1, 2, 3, 4, 5, 100, 1023, 1024, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_edge(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > bucket_upper_edge(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn count_sum_mean() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 10] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 16);
        assert!((h.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = Histogram::new();
        // 100 observations of 1, one observation of 1000.
        for _ in 0..100 {
            h.observe(1);
        }
        h.observe(1000);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p95(), 1);
        // The outlier is the top ~1%: p99 of 101 obs is rank 100 → still 1,
        // but the max edge must cover 1000.
        assert!(h.max_edge() >= 1000);
        assert_eq!(h.quantile(1.0), bucket_upper_edge(bucket_index(1000)));
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_width() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // True p50 = 500; estimate must be within [500, 2·500).
        let p50 = h.p50();
        assert!((500..1024).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((990..2048).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max_edge(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let h = Histogram::new();
        h.observe(5);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn zero_values_land_in_bucket_zero() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(0);
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.p50(), 0);
    }
}
