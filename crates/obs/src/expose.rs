//! Exposition formats: Prometheus text and a human-readable report.

use std::fmt::Write as _;
use std::sync::PoisonError;

use crate::histogram::{bucket_upper_edge, NUM_BUCKETS};
use crate::metrics::{Metric, MetricsRegistry};

/// Maps a dotted/dashed internal name onto the Prometheus charset
/// (`[a-zA-Z0-9_:]`, not starting with a digit).
pub fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

impl MetricsRegistry {
    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` lines, one sample line per counter or
    /// gauge, and cumulative `_bucket`/`_sum`/`_count` series per
    /// histogram with `le` edges at `2^i − 1`.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        let mut last_name: Option<String> = None;
        for (key, metric) in metrics.iter() {
            let name = sanitize_name(&key.name);
            if last_name.as_deref() != Some(&name) {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_name = Some(name.clone());
            }
            match metric {
                Metric::Counter(c) => {
                    let labels = render_labels(&key.labels, None);
                    let _ = writeln!(out, "{name}{labels} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let labels = render_labels(&key.labels, None);
                    let _ = writeln!(out, "{name}{labels} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let top = counts
                        .iter()
                        .rposition(|&c| c > 0)
                        .map(|i| i + 1)
                        .unwrap_or(0)
                        .min(NUM_BUCKETS);
                    let mut cum = 0u64;
                    for (i, &c) in counts.iter().enumerate().take(top) {
                        cum += c;
                        let labels = render_labels(
                            &key.labels,
                            Some(("le", bucket_upper_edge(i).to_string())),
                        );
                        let _ = writeln!(out, "{name}_bucket{labels} {cum}");
                    }
                    let labels = render_labels(&key.labels, Some(("le", "+Inf".to_string())));
                    let _ = writeln!(out, "{name}_bucket{labels} {}", h.count());
                    let plain = render_labels(&key.labels, None);
                    let _ = writeln!(out, "{name}_sum{plain} {}", h.sum());
                    let _ = writeln!(out, "{name}_count{plain} {}", h.count());
                }
            }
        }
        out
    }

    /// Renders a compact human-readable report: counters and gauges as
    /// `name{labels} = value`, histograms as count/mean/percentiles.
    pub fn report(&self) -> String {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for (key, metric) in metrics.iter() {
            let labels = render_labels(&key.labels, None);
            let name = &key.name;
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{labels} = {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{labels} = {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name}{labels}: n={} mean={:.1} p50≤{} p95≤{} p99≤{} max≤{}",
                        h.count(),
                        h.mean(),
                        h.p50(),
                        h.p95(),
                        h.p99(),
                        h.max_edge()
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("orp.query-time"), "orp_query_time");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn prometheus_counter_and_gauge_format() {
        let reg = MetricsRegistry::new();
        reg.counter("skq_queries_total", &[("plan", "framework")])
            .add(3);
        reg.gauge("skq_index_bytes", &[]).set(4096.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE skq_index_bytes gauge"), "{text}");
        assert!(text.contains("skq_index_bytes 4096\n"), "{text}");
        assert!(text.contains("# TYPE skq_queries_total counter"), "{text}");
        assert!(
            text.contains("skq_queries_total{plan=\"framework\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_type_line_emitted_once_per_name() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("plan", "a")]).inc();
        reg.counter("c_total", &[("plan", "b")]).inc();
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE c_total counter").count(), 1, "{text}");
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us", &[]);
        h.observe(1); // bucket 1, le = 1
        h.observe(3); // bucket 2, le = 3
        h.observe(3);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_us histogram"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"3\"} 3"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_us_sum 7"), "{text}");
        assert!(text.contains("lat_us_count 3"), "{text}");
    }

    #[test]
    fn prometheus_label_values_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("q", "say \"hi\"\\n")]).inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains("c_total{q=\"say \\\"hi\\\"\\\\n\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn report_summarizes_histograms() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[]);
        for v in [10u64, 20, 30] {
            h.observe(v);
        }
        let r = reg.report();
        assert!(r.contains("lat: n=3"), "{r}");
        assert!(r.contains("mean=20.0"), "{r}");
    }
}
