//! RAII span timers.
//!
//! A [`Span`] measures the wall time between its creation and drop and
//! records it (in microseconds) into the histogram
//! `skq_span_duration_microseconds{span="<name>"}`. Spans nest freely —
//! each records independently — so a query method can time its total
//! under one name while phases (tree descent, pivot scan, list scan)
//! record under their own names.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::histogram::Histogram;
use crate::metrics::MetricsRegistry;

/// Histogram name used by all spans.
pub const SPAN_METRIC: &str = "skq_span_duration_microseconds";

/// An RAII wall-time span; records into a histogram on drop.
///
/// # Example
///
/// ```
/// {
///     let _span = skq_obs::Span::enter("orp.query");
///     // … timed work …
/// } // recorded on drop
/// assert!(skq_obs::global()
///     .render_prometheus()
///     .contains("span=\"orp.query\""));
/// ```
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
    traced: bool,
}

impl Span {
    /// Starts a span recording into the [global](crate::global)
    /// registry.
    pub fn enter(name: &str) -> Self {
        Self::enter_in(crate::global(), name)
    }

    /// Starts a span recording into `registry`.
    ///
    /// When [tracing](crate::trace) is enabled the span also emits a
    /// begin/end event pair into the global trace buffer, regardless of
    /// which registry receives the duration histogram.
    pub fn enter_in(registry: &MetricsRegistry, name: &str) -> Self {
        Self {
            hist: registry.histogram(SPAN_METRIC, &[("span", name)]),
            start: Instant::now(),
            traced: crate::trace::span_begin(name),
        }
    }

    /// Time elapsed since the span was entered.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed().as_micros() as u64);
        if self.traced {
            crate::trace::span_end();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let reg = MetricsRegistry::new();
        {
            let _s = Span::enter_in(&reg, "test.phase");
        }
        let h = reg.histogram(SPAN_METRIC, &[("span", "test.phase")]);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn nested_spans_record_independently() {
        let reg = MetricsRegistry::new();
        {
            let _outer = Span::enter_in(&reg, "outer");
            {
                let _inner = Span::enter_in(&reg, "inner");
            }
            {
                let _inner = Span::enter_in(&reg, "inner");
            }
        }
        assert_eq!(reg.histogram(SPAN_METRIC, &[("span", "outer")]).count(), 1);
        assert_eq!(reg.histogram(SPAN_METRIC, &[("span", "inner")]).count(), 2);
    }
}
