//! `skq-obs` — zero-dependency observability for the skq workspace.
//!
//! The paper this workspace reproduces evaluates its indexes by
//! *counting structural quantities* (crossing nodes, objects examined —
//! Lemmas 9–10, Propositions 1–3), so first-class measurement is not an
//! afterthought here: it is the experiment harness. This crate provides
//! the substrate, deliberately std-only so it can sit below every other
//! crate:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and log₂-bucketed
//!   [`Histogram`]s, all updated with relaxed atomics (no locks on the
//!   hot path once a handle is held);
//! * [`Span`] — RAII wall-time timers recording into histograms, e.g.
//!   `Span::enter("orp.query")`;
//! * [`QueryLog`] — a fixed-capacity ring buffer of recent
//!   [`QueryRecord`]s for post-hoc debugging, with a slowest-query
//!   tracker pointing into the trace buffer;
//! * [`trace`] — opt-in structured tracing: every [`Span`] becomes a
//!   nested begin/end event pair with typed attributes, exportable as
//!   chrome-trace/Perfetto JSON via [`trace::export_chrome`];
//! * two exposition formats — [`MetricsRegistry::render_prometheus`]
//!   (the text format scrapers ingest) and
//!   [`MetricsRegistry::report`] (human-readable).
//!
//! # Naming scheme
//!
//! Exported series follow Prometheus conventions with the `skq_`
//! prefix: `skq_<subsystem>_<quantity>_<unit>` for histograms and
//! gauges and `skq_<subsystem>_<thing>_total` for counters, with the
//! variable part (index kind, plan, span name) carried in labels — e.g.
//! `skq_build_duration_microseconds{index="orp_kw"}`,
//! `skq_planner_chosen_total{plan="framework"}`,
//! `skq_span_duration_microseconds{span="orp.query"}`.
//!
//! # Global vs. local
//!
//! Library code records into [`global()`] / [`query_log()`] so the CLI
//! and harness can export everything process-wide; tests that need
//! isolation construct their own [`MetricsRegistry`] or reason about
//! counter deltas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expose;
mod histogram;
mod metrics;
mod querylog;
mod span;
pub mod trace;

pub use expose::{escape_label_value, sanitize_name};
pub use histogram::{bucket_index, bucket_upper_edge, Histogram, NUM_BUCKETS};
pub use metrics::{Counter, Gauge, MetricKind, MetricsRegistry};
pub use querylog::{QueryLog, QueryRecord};
pub use span::{Span, SPAN_METRIC};
pub use trace::{AttrValue, TraceEvent};

use std::sync::OnceLock;

/// Capacity of the [global query log](query_log).
pub const QUERY_LOG_CAPACITY: usize = 256;

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
static QUERY_LOG: OnceLock<QueryLog> = OnceLock::new();

/// The process-wide metrics registry.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// The process-wide query log (capacity [`QUERY_LOG_CAPACITY`]).
pub fn query_log() -> &'static QueryLog {
    QUERY_LOG.get_or_init(|| QueryLog::new(QUERY_LOG_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global().counter("skq_obs_selftest_total", &[]).inc();
        assert!(
            global()
                .counter_value("skq_obs_selftest_total", &[])
                .unwrap()
                >= 1
        );
    }

    #[test]
    fn global_query_log_has_fixed_capacity() {
        assert_eq!(query_log().capacity(), QUERY_LOG_CAPACITY);
    }
}
