//! The metric registry: named counters, gauges, and histograms.
//!
//! Registration (name → handle) takes a mutex, so callers should look
//! their handles up once per operation (or once per structure) and
//! then update through the returned `Arc` — every update is a relaxed
//! atomic operation with no locking.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::histogram::Histogram;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // relaxed: monotonic telemetry counter on the hot path; no
        // data is published through it and readers tolerate lag
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // relaxed: telemetry snapshot; readers tolerate lag
        self.0.load(Ordering::Relaxed)
    }

    fn clear(&self) {
        // relaxed: test-isolation reset; callers quiesce traffic first
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down. Stored as the bit pattern
/// of an `f64` so it can carry byte counts, ratios, and estimates.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        // relaxed: last-writer-wins telemetry value; the bit pattern
        // is a single atomic word, so readers never see a torn f64
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // relaxed: telemetry snapshot; readers tolerate lag
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn clear(&self) {
        self.set(0.0);
    }
}

/// The kind of a registered metric (drives `# TYPE` exposition lines).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Set-value gauge.
    Gauge,
    /// Log₂-bucketed histogram.
    Histogram,
}

/// One registered metric instance.
#[derive(Clone, Debug)]
pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    pub(crate) fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// Identity of a metric: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MetricKey {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

/// A registry of named metrics.
///
/// # Example
///
/// ```
/// use skq_obs::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let c = reg.counter("skq_queries_total", &[("kind", "orp")]);
/// c.inc();
/// let h = reg.histogram("skq_query_duration_microseconds", &[]);
/// h.observe(120);
/// assert!(reg.render_prometheus().contains("skq_queries_total"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    pub(crate) metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        let mut map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name} already registered as {:?}", other.kind()),
        }
    }

    /// Gets or creates the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        let mut map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        match map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name} already registered as {:?}", other.kind()),
        }
    }

    /// Gets or creates the histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        let mut map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name} already registered as {:?}", other.kind()),
        }
    }

    /// Reads a counter's current value, or `None` if absent. Intended
    /// for tests and reporting, not hot paths.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        match self
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Number of registered metric instances.
    pub fn len(&self) -> usize {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zeroes every metric, keeping registrations (and outstanding
    /// handles) alive. Primarily for test isolation.
    pub fn reset(&self) {
        for metric in self
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            match metric {
                Metric::Counter(c) => c.clear(),
                Metric::Gauge(g) => g.clear(),
                Metric::Histogram(h) => h.clear(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(reg.counter_value("c_total", &[]), Some(5));
        // Same identity returns the same underlying atomic.
        reg.counter("c_total", &[]).inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn labels_distinguish_instances() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("plan", "a")]).inc();
        reg.counter("c_total", &[("plan", "b")]).add(2);
        assert_eq!(reg.counter_value("c_total", &[("plan", "a")]), Some(1));
        assert_eq!(reg.counter_value("c_total", &[("plan", "b")]), Some(2));
        // Label order does not matter.
        reg.counter("m", &[("x", "1"), ("y", "2")]).inc();
        assert_eq!(reg.counter_value("m", &[("y", "2"), ("x", "1")]), Some(1));
    }

    #[test]
    fn gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("bytes", &[]);
        g.set(1234.5);
        assert_eq!(reg.gauge("bytes", &[]).get(), 1234.5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total", &[]);
        let h = reg.histogram("h", &[]);
        c.add(9);
        h.observe(3);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc(); // old handle still wired to the registry
        assert_eq!(reg.counter_value("c_total", &[]), Some(1));
    }
}
