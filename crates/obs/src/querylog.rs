//! A fixed-capacity ring buffer of recent query records.
//!
//! Metrics aggregate; the query log keeps the last few hundred
//! individual executions — problem kind, `k`, the plan chosen, the
//! execution counters, predicted vs. actual cost, and wall time — for
//! post-hoc debugging ("what did the slow queries have in common?").

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// One recorded query execution.
#[derive(Clone, Debug, Default)]
pub struct QueryRecord {
    /// Problem kind (`"orp"`, `"srp"`, `"nn_linf"`, `"planned_orp"`, …).
    pub kind: &'static str,
    /// Number of query keywords.
    pub k: usize,
    /// Plan chosen, when a planner was involved.
    pub plan: Option<&'static str>,
    /// Tree nodes visited.
    pub nodes_visited: u64,
    /// Objects examined (pivot + list scans).
    pub objects_examined: u64,
    /// Objects reported.
    pub reported: u64,
    /// Planner's predicted cost for the chosen plan, if planned.
    pub predicted_cost: Option<f64>,
    /// Post-hoc actual cost in the same units, if known.
    pub actual_cost: Option<f64>,
    /// Wall time of the execution.
    pub duration: Duration,
    /// Root-span id in the [trace buffer](crate::trace) when the query
    /// ran under tracing — the pointer from the log into the exported
    /// chrome-trace file (`args.trace_id` on every event of the query).
    pub trace_id: Option<u64>,
}

/// A bounded, thread-safe ring buffer of [`QueryRecord`]s.
///
/// Besides the ring, the log tracks the slowest record seen since the
/// last [`clear`](Self::clear) — the ring may have evicted it, but its
/// [`trace_id`](QueryRecord::trace_id) keeps pointing into the trace.
#[derive(Debug)]
pub struct QueryLog {
    capacity: usize,
    inner: Mutex<VecDeque<QueryRecord>>,
    slowest: Mutex<Option<QueryRecord>>,
}

impl QueryLog {
    /// An empty log holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            slowest: Mutex::new(None),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&self, record: QueryRecord) {
        {
            let mut s = self.slowest.lock().unwrap_or_else(PoisonError::into_inner);
            let is_slowest = match s.as_ref() {
                Some(r) => record.duration >= r.duration,
                None => true,
            };
            if is_slowest {
                *s = Some(record.clone());
            }
        }
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(record);
    }

    /// The slowest record since the last [`clear`](Self::clear), even
    /// if the ring has already evicted it.
    pub fn slowest(&self) -> Option<QueryRecord> {
        self.slowest
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The most recent `n` records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<QueryRecord> {
        let q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let skip = q.len().saturating_sub(n);
        q.iter().skip(skip).cloned().collect()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of records held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Removes all records and resets the slowest-query tracker.
    pub fn clear(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        *self.slowest.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// One line per recent record, oldest first.
    pub fn report(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in self.recent(n) {
            let plan = r.plan.unwrap_or("-");
            let _ = write!(
                out,
                "{} k={} plan={} visited={} examined={} reported={} {}µs",
                r.kind,
                r.k,
                plan,
                r.nodes_visited,
                r.objects_examined,
                r.reported,
                r.duration.as_micros()
            );
            if let (Some(p), Some(a)) = (r.predicted_cost, r.actual_cost) {
                let _ = write!(out, " predicted={p:.0} actual={a:.0}");
            }
            if let Some(t) = r.trace_id {
                let _ = write!(out, " trace={t}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: usize) -> QueryRecord {
        QueryRecord {
            kind: "orp",
            k,
            ..Default::default()
        }
    }

    #[test]
    fn push_and_recent() {
        let log = QueryLog::new(8);
        log.push(rec(2));
        log.push(rec(3));
        let r = log.recent(10);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].k, 2);
        assert_eq!(r[1].k, 3);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let log = QueryLog::new(3);
        for k in 0..5 {
            log.push(rec(k));
        }
        assert_eq!(log.len(), 3);
        let ks: Vec<usize> = log.recent(3).iter().map(|r| r.k).collect();
        assert_eq!(ks, vec![2, 3, 4]);
    }

    #[test]
    fn recent_limits() {
        let log = QueryLog::new(10);
        for k in 0..6 {
            log.push(rec(k));
        }
        let ks: Vec<usize> = log.recent(2).iter().map(|r| r.k).collect();
        assert_eq!(ks, vec![4, 5]);
    }

    #[test]
    fn slowest_survives_ring_eviction() {
        let log = QueryLog::new(2);
        log.push(QueryRecord {
            kind: "slow",
            duration: Duration::from_micros(900),
            trace_id: Some(7),
            ..Default::default()
        });
        for k in 0..5 {
            log.push(QueryRecord {
                kind: "fast",
                k,
                duration: Duration::from_micros(10),
                ..Default::default()
            });
        }
        // The ring only holds the last two fast records…
        assert!(log.recent(10).iter().all(|r| r.kind == "fast"));
        // …but the slowest tracker still points at the slow one's trace.
        let slowest = log.slowest().expect("slowest tracked");
        assert_eq!(slowest.kind, "slow");
        assert_eq!(slowest.trace_id, Some(7));
        log.clear();
        assert!(log.slowest().is_none());
    }

    #[test]
    fn report_includes_trace_pointer() {
        let log = QueryLog::new(4);
        log.push(QueryRecord {
            kind: "orp",
            trace_id: Some(3),
            ..Default::default()
        });
        assert!(log.report(4).contains(" trace=3"), "{}", log.report(4));
    }

    #[test]
    fn report_includes_costs() {
        let log = QueryLog::new(4);
        log.push(QueryRecord {
            kind: "planned_orp",
            k: 2,
            plan: Some("framework"),
            predicted_cost: Some(120.0),
            actual_cost: Some(97.0),
            ..Default::default()
        });
        let r = log.report(4);
        assert!(r.contains("plan=framework"), "{r}");
        assert!(r.contains("predicted=120 actual=97"), "{r}");
    }
}
