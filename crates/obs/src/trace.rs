//! Structured query tracing with chrome-trace / Perfetto export.
//!
//! Aggregate metrics say *how much* a workload cost; a trace says
//! *where one query spent it*. This module captures nested span
//! begin/end events on a thread-local stack — every [`crate::Span`]
//! automatically participates when tracing is enabled — and lets
//! instrumented code attach typed attributes (nodes visited, postings
//! scanned, plan label, …) to the innermost open span. The captured
//! events export as chrome-trace JSON (the "JSON Array Format" both
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load).
//!
//! Tracing is process-global and off by default: when disabled, the
//! only cost at a span site is one relaxed atomic load. A typical
//! session brackets the interesting work:
//!
//! ```
//! skq_obs::trace::enable();
//! {
//!     let _span = skq_obs::Span::enter("doc.example");
//!     skq_obs::trace::attach_u64("nodes_visited", 7);
//! }
//! skq_obs::trace::disable();
//! let json = skq_obs::trace::export_chrome();
//! assert!(json.contains("\"doc.example\""));
//! ```
//!
//! Spans opened while tracing is enabled are closed and recorded even
//! if tracing is disabled in between, so every `B` event in an export
//! taken after the bracketed work has its matching `E`. Re-enabling
//! clears the buffer; enable/disable should happen between queries,
//! not inside one.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Hard cap on buffered events; further events are counted as dropped.
pub const MAX_TRACE_EVENTS: usize = 1 << 20;

/// A typed attribute value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// An unsigned counter (the common case for `QueryStats` fields).
    U64(u64),
    /// A float (costs, ratios).
    F64(f64),
    /// A string (plan label, build tier, problem kind).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

/// One captured event: a span begin (`B`) or end (`E`) in the
/// chrome-trace sense, timestamped in microseconds since [`enable`].
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name (shared by the matching `B`/`E` pair).
    pub name: String,
    /// `'B'` (begin) or `'E'` (end).
    pub phase: char,
    /// Microseconds since tracing was enabled.
    pub ts_micros: u64,
    /// Sequential id of the capturing thread (chrome-trace `tid`).
    pub tid: u64,
    /// Id of the root span this event belongs to; all events of one
    /// top-level query share it, and [`crate::QueryRecord::trace_id`]
    /// points back at it.
    pub trace_id: u64,
    /// Attributes attached while the span was open (on `E` events).
    pub attrs: Vec<(String, AttrValue)>,
}

struct TracerInner {
    epoch: Instant,
    events: Vec<TraceEvent>,
    dropped: u64,
}

struct Tracer {
    enabled: AtomicBool,
    inner: Mutex<TracerInner>,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        inner: Mutex::new(TracerInner {
            epoch: Instant::now(),
            events: Vec::new(),
            dropped: 0,
        }),
    })
}

struct OpenSpan {
    name: String,
    trace_id: u64,
    attrs: Vec<(String, AttrValue)>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
}

fn current_tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            // relaxed: thread-id allocation; uniqueness is all that
            // matters, no ordering with other memory is implied
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Starts (or restarts) capture: clears the buffer, resets the clock.
pub fn enable() {
    let t = tracer();
    let mut inner = t.inner.lock().unwrap_or_else(PoisonError::into_inner);
    inner.events.clear();
    inner.dropped = 0;
    inner.epoch = Instant::now();
    t.enabled.store(true, Ordering::SeqCst);
}

/// Stops capture; buffered events stay available for export.
pub fn disable() {
    tracer().enabled.store(false, Ordering::SeqCst);
}

/// Whether capture is currently on.
pub fn is_enabled() -> bool {
    // relaxed: hot-path gate only; the event buffer itself is
    // published through the tracer mutex, and enable()'s SeqCst store
    // makes a stale `false` merely skip the first events
    tracer().enabled.load(Ordering::Relaxed)
}

fn record(event: TraceEvent) {
    let mut inner = tracer()
        .inner
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if inner.events.len() >= MAX_TRACE_EVENTS {
        inner.dropped += 1;
        crate::global()
            .counter("skq_trace_events_dropped_total", &[])
            .inc();
        return;
    }
    let ts = inner.epoch.elapsed().as_micros() as u64;
    let mut event = event;
    event.ts_micros = ts;
    inner.events.push(event);
}

/// Called by [`crate::Span`] on creation; returns whether the span was
/// captured (so its drop knows to emit the matching `E`).
pub(crate) fn span_begin(name: &str) -> bool {
    if !is_enabled() {
        return false;
    }
    let tid = current_tid();
    let trace_id = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let trace_id = match stack.last() {
            Some(top) => top.trace_id,
            // relaxed: trace-id allocation; uniqueness is all that
            // matters, no ordering with other memory is implied
            None => NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
        };
        stack.push(OpenSpan {
            name: name.to_string(),
            trace_id,
            attrs: Vec::new(),
        });
        trace_id
    });
    crate::global().counter("skq_trace_spans_total", &[]).inc();
    record(TraceEvent {
        name: name.to_string(),
        phase: 'B',
        ts_micros: 0,
        tid,
        trace_id,
        attrs: Vec::new(),
    });
    true
}

/// Called by [`crate::Span`] on drop when `span_begin` returned true.
pub(crate) fn span_end() {
    let popped = STACK.with(|s| s.borrow_mut().pop());
    let Some(span) = popped else { return };
    record(TraceEvent {
        name: span.name,
        phase: 'E',
        ts_micros: 0,
        tid: current_tid(),
        trace_id: span.trace_id,
        attrs: span.attrs,
    });
}

/// Attaches a typed attribute to the innermost open span on this
/// thread. A no-op when tracing is disabled or no span is open.
pub fn attach(key: &str, value: AttrValue) {
    if !is_enabled() {
        return;
    }
    STACK.with(|s| {
        if let Some(top) = s.borrow_mut().last_mut() {
            top.attrs.push((key.to_string(), value));
        }
    });
}

/// Attaches an unsigned counter attribute (see [`attach`]).
pub fn attach_u64(key: &str, value: u64) {
    attach(key, AttrValue::U64(value));
}

/// Attaches a float attribute (see [`attach`]).
pub fn attach_f64(key: &str, value: f64) {
    attach(key, AttrValue::F64(value));
}

/// Attaches a string attribute (see [`attach`]).
pub fn attach_str(key: &str, value: &str) {
    attach(key, AttrValue::Str(value.to_string()));
}

/// The trace id of this thread's current root span, if one is open —
/// the pointer stored in [`crate::QueryRecord::trace_id`].
pub fn current_trace_id() -> Option<u64> {
    if !is_enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().first().map(|span| span.trace_id))
}

/// Number of events currently buffered.
pub fn event_count() -> usize {
    tracer()
        .inner
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .events
        .len()
}

/// Events discarded because the buffer hit [`MAX_TRACE_EVENTS`].
pub fn dropped_events() -> u64 {
    tracer()
        .inner
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .dropped
}

/// A snapshot of the buffered events, in capture order.
pub fn snapshot() -> Vec<TraceEvent> {
    tracer()
        .inner
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .events
        .clone()
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_attr_value(out: &mut String, value: &AttrValue) {
    match value {
        AttrValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        AttrValue::F64(_) => out.push_str("null"),
        AttrValue::Str(s) => push_json_str(out, s),
        AttrValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Renders the buffered events as chrome-trace JSON ("JSON Array
/// Format"): an object with a `traceEvents` array that
/// `chrome://tracing` and Perfetto load directly. Span attributes ride
/// in the `args` of the `E` event, where both viewers merge them into
/// the slice.
pub fn export_chrome() -> String {
    let inner = tracer()
        .inner
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let mut out = String::with_capacity(64 + inner.events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"skq\"}}",
    );
    for e in &inner.events {
        out.push(',');
        out.push_str("{\"name\":");
        push_json_str(&mut out, &e.name);
        let _ = write!(
            out,
            ",\"cat\":\"skq\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{",
            e.phase, e.ts_micros, e.tid
        );
        let _ = write!(out, "\"trace_id\":{}", e.trace_id);
        for (k, v) in &e.attrs {
            out.push(',');
            push_json_str(&mut out, k);
            out.push(':');
            push_attr_value(&mut out, v);
        }
        out.push_str("}}");
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"skq\":{{\"dropped_events\":{}}}}}",
        inner.dropped
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    // The tracer is process-global; serialize the tests that toggle it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_captures_nothing() {
        let _g = guard();
        disable();
        enable();
        disable();
        {
            let _span = Span::enter("trace.test.off");
            attach_u64("x", 1);
        }
        assert_eq!(event_count(), 0);
        assert_eq!(current_trace_id(), None);
    }

    #[test]
    fn nested_spans_pair_and_share_trace_id() {
        let _g = guard();
        enable();
        {
            let _outer = Span::enter("trace.test.outer");
            let outer_id = current_trace_id().expect("root id");
            {
                let _inner = Span::enter("trace.test.inner");
                assert_eq!(current_trace_id(), Some(outer_id));
                attach_u64("nodes_visited", 42);
            }
        }
        disable();
        let events = snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.phase).collect::<Vec<_>>(),
            vec!['B', 'B', 'E', 'E']
        );
        // outer-B, inner-B, inner-E, outer-E — one shared trace id.
        let id = events[0].trace_id;
        assert!(events.iter().all(|e| e.trace_id == id));
        assert_eq!(events[2].name, "trace.test.inner");
        assert_eq!(
            events[2].attrs,
            vec![("nodes_visited".to_string(), AttrValue::U64(42))]
        );
        // Timestamps are monotone within the capture.
        assert!(events.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }

    #[test]
    fn sibling_roots_get_distinct_trace_ids() {
        let _g = guard();
        enable();
        let a = {
            let _s = Span::enter("trace.test.a");
            current_trace_id().unwrap()
        };
        let b = {
            let _s = Span::enter("trace.test.b");
            current_trace_id().unwrap()
        };
        disable();
        assert_ne!(a, b);
    }

    #[test]
    fn export_is_wellformed_chrome_trace() {
        let _g = guard();
        enable();
        {
            let _s = Span::enter("trace.test.export");
            attach_str("plan", "framework");
            attach_f64("cost", 12.5);
            attach(
                "quoted\"name",
                AttrValue::Str("line\nbreak\\slash".to_string()),
            );
        }
        disable();
        let json = export_chrome();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"plan\":\"framework\""));
        assert!(json.contains("\"cost\":12.5"));
        assert!(json.contains("\\\"name\""));
        assert!(json.contains("line\\nbreak\\\\slash"));
        // Balanced braces (cheap well-formedness proxy; the integration
        // tests parse it with a real JSON parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn reenable_clears_previous_capture() {
        let _g = guard();
        enable();
        {
            let _s = Span::enter("trace.test.first");
        }
        enable();
        disable();
        assert_eq!(event_count(), 0);
    }
}
