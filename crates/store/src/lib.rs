//! `skq-store` — the pluggable persistence tier.
//!
//! The framework indexes in this workspace are expensive to build
//! (`O(n log^{d-1} n)` preprocessing) but cheap to *walk*: every
//! structure is a flat arena plus sorted columns. This crate exploits
//! that by snapshotting built indexes into the paged on-disk format of
//! `skq_core::persist` (DESIGN.md §15) and reloading them with a
//! validation pass instead of a rebuild.
//!
//! The surface is one trait:
//!
//! * [`IndexBackend`] — byte-level `put`/`get`/`list` plus provided
//!   generic [`save`](IndexBackend::save) / [`load`](IndexBackend::load)
//!   wrappers that own the observability (spans `store.save` /
//!   `store.load`; counters `skq_store_bytes_written_total`,
//!   `skq_store_bytes_read_total`, `skq_store_load_total`,
//!   `skq_store_corruption_total`);
//! * [`MemBackend`] — a process-local map, the default for tests and
//!   single-process serving;
//! * [`FileBackend`] — one `<name>.skq` file per snapshot under a
//!   directory, written atomically (temp file + rename).
//!
//! Snapshots are schema-versioned ([`SCHEMA_VERSION`]) and
//! checksummed per page; a corrupt or future-versioned snapshot loads
//! as a typed [`SkqError`], never a panic.
//!
//! # Example
//!
//! ```
//! use skq_core::dataset::Dataset;
//! use skq_core::suite::OrpKwSuite;
//! use skq_geom::{Point, Rect};
//! use skq_store::{IndexBackend, MemBackend};
//!
//! let data = Dataset::from_parts(vec![
//!     (Point::new2(1.0, 1.0), vec![0, 1]),
//!     (Point::new2(2.0, 2.0), vec![0]),
//! ]);
//! let suite = OrpKwSuite::build(&data, 2);
//! let store = MemBackend::new();
//! store.save("demo", &suite).unwrap();
//! let loaded: OrpKwSuite = store.load("demo").unwrap();
//! assert_eq!(loaded.query(&Rect::full(2), &[0, 1]).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use skq_core::error::SkqError;
use skq_core::failpoints;

pub mod durable;
pub mod wal;

pub use durable::{CheckpointPolicy, DurabilityConfig, DurableDynamic, RecoveryReport};
pub use skq_core::persist::{Persist, SCHEMA_VERSION};
pub use wal::{SyncPolicy, Wal, WalConfig, WalOp, WalRecord};

/// File extension given to snapshots by [`FileBackend`].
pub const SNAPSHOT_EXT: &str = "skq";

/// Fsyncs an open file, consulting the `store::fsync` fail point
/// first so chaos tests can simulate a device that refuses to make
/// bytes durable. Shared by [`FileBackend::put`] and the WAL.
pub(crate) fn sync_file(f: &fs::File, what: &Path) -> Result<(), SkqError> {
    failpoints::check("store::fsync")?;
    f.sync_all()
        .map_err(|e| store_err("file", format!("fsyncing {}: {e}", what.display())))?;
    skq_obs::global().counter("skq_wal_fsyncs_total", &[]).inc();
    Ok(())
}

/// Fsyncs a directory, making a rename or unlink inside it durable
/// (POSIX: the rename itself lives in the directory's metadata, so a
/// crash after `rename` but before the directory sync can lose the
/// *name*, not just the bytes). Same fail point as [`sync_file`].
pub(crate) fn sync_dir(dir: &Path) -> Result<(), SkqError> {
    let d = fs::File::open(dir)
        .map_err(|e| store_err("file", format!("opening {} to fsync: {e}", dir.display())))?;
    sync_file(&d, dir)
}

fn store_err(backend: &str, message: String) -> SkqError {
    SkqError::Store {
        backend: backend.to_string(),
        message,
    }
}

/// Checks that `name` is safe to embed in a file name: non-empty
/// ASCII alphanumerics plus `-`, `_`, `.`, and not a dotfile. Shared
/// by every backend so snapshot names stay portable between them.
///
/// # Errors
///
/// [`SkqError::Store`] naming the offending name.
pub fn validate_name(name: &str) -> Result<(), SkqError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.');
    if ok {
        Ok(())
    } else {
        Err(store_err(
            "name",
            format!(
                "invalid snapshot name {name:?}: use ASCII [A-Za-z0-9._-], not starting with '.'"
            ),
        ))
    }
}

/// A place snapshots live.
///
/// Implementors provide the byte-level operations; the provided
/// [`save`](Self::save) / [`load`](Self::load) wrappers layer the
/// codec, schema check, and observability on top, so every backend
/// reports the same metrics and errors the same way.
pub trait IndexBackend {
    /// A short label for metrics and error messages (`"mem"`,
    /// `"file"`).
    fn backend_name(&self) -> &'static str;

    /// Stores `bytes` under `name`, replacing any previous snapshot of
    /// that name.
    ///
    /// # Errors
    ///
    /// [`SkqError::Store`] on an invalid name or backend I/O failure.
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), SkqError>;

    /// Retrieves the snapshot stored under `name`.
    ///
    /// # Errors
    ///
    /// [`SkqError::Store`] if no snapshot of that name exists or the
    /// backend cannot read it.
    fn get(&self, name: &str) -> Result<Vec<u8>, SkqError>;

    /// Names of every stored snapshot, sorted.
    ///
    /// # Errors
    ///
    /// [`SkqError::Store`] if the backend cannot enumerate.
    fn list(&self) -> Result<Vec<String>, SkqError>;

    /// Encodes `value` with the paged codec and stores it under
    /// `name`. Records the `store.save` span and
    /// `skq_store_bytes_written_total`.
    ///
    /// # Errors
    ///
    /// Everything [`Persist::to_bytes`] and [`put`](Self::put) can
    /// return.
    fn save<T: Persist>(&self, name: &str, value: &T) -> Result<u64, SkqError> {
        let _span = skq_obs::Span::enter("store.save");
        let bytes = value.to_bytes()?;
        self.put(name, &bytes)?;
        let written = bytes.len() as u64;
        skq_obs::global()
            .counter(
                "skq_store_bytes_written_total",
                &[("backend", self.backend_name())],
            )
            .add(written);
        Ok(written)
    }

    /// Retrieves the snapshot under `name` and decodes it. Records the
    /// `store.load` span, `skq_store_bytes_read_total`, and
    /// `skq_store_load_total{backend}`; a decode failure additionally
    /// bumps `skq_store_corruption_total`.
    ///
    /// # Errors
    ///
    /// Everything [`get`](Self::get) and
    /// [`Persist::try_from_bytes`] can return — a missing snapshot or
    /// I/O failure is [`SkqError::Store`], malformed bytes are
    /// [`SkqError::Corrupted`].
    fn load<T: Persist>(&self, name: &str) -> Result<T, SkqError> {
        let _span = skq_obs::Span::enter("store.load");
        let backend = self.backend_name();
        let bytes = self.get(name)?;
        skq_obs::global()
            .counter("skq_store_bytes_read_total", &[("backend", backend)])
            .add(bytes.len() as u64);
        let value = T::try_from_bytes(&bytes).inspect_err(|e| {
            if matches!(e, SkqError::Corrupted { .. }) {
                skq_obs::global()
                    .counter("skq_store_corruption_total", &[("backend", backend)])
                    .inc();
            }
        })?;
        skq_obs::global()
            .counter("skq_store_load_total", &[("backend", backend)])
            .inc();
        Ok(value)
    }
}

/// An in-process snapshot store: a mutex-guarded name → bytes map.
///
/// The default backend — zero configuration, no filesystem footprint —
/// for tests and for serving setups that only need snapshot *rotation*
/// (publish bytes once, hand them to many readers) rather than
/// durability.
#[derive(Default)]
pub struct MemBackend {
    map: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemBackend {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IndexBackend for MemBackend {
    fn backend_name(&self) -> &'static str {
        "mem"
    }

    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), SkqError> {
        validate_name(name)?;
        let mut map = self
            .map
            .lock()
            .map_err(|_| store_err("mem", "snapshot map mutex poisoned".to_string()))?;
        map.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, SkqError> {
        validate_name(name)?;
        let map = self
            .map
            .lock()
            .map_err(|_| store_err("mem", "snapshot map mutex poisoned".to_string()))?;
        map.get(name)
            .cloned()
            .ok_or_else(|| store_err("mem", format!("no snapshot named {name:?}")))
    }

    fn list(&self) -> Result<Vec<String>, SkqError> {
        let map = self
            .map
            .lock()
            .map_err(|_| store_err("mem", "snapshot map mutex poisoned".to_string()))?;
        let mut names: Vec<String> = map.keys().cloned().collect();
        names.sort();
        Ok(names)
    }
}

/// A directory of `<name>.skq` files, one per snapshot.
///
/// Writes are atomic: bytes land in a `.<name>.skq.tmp` sibling first
/// and are renamed into place, so a crashed writer never leaves a
/// half-written snapshot under the published name (the page checksums
/// catch torn reads from other causes).
pub struct FileBackend {
    dir: PathBuf,
}

impl FileBackend {
    /// A backend over `dir`, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// [`SkqError::Store`] if the directory cannot be created.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, SkqError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)
            .map_err(|e| store_err("file", format!("creating {}: {e}", dir.display())))?;
        Ok(Self { dir })
    }

    /// The directory snapshots are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path a snapshot of `name` is (or would be) stored at.
    ///
    /// # Errors
    ///
    /// [`SkqError::Store`] on an invalid name.
    pub fn path_of(&self, name: &str) -> Result<PathBuf, SkqError> {
        validate_name(name)?;
        Ok(self.dir.join(format!("{name}.{SNAPSHOT_EXT}")))
    }
}

impl IndexBackend for FileBackend {
    fn backend_name(&self) -> &'static str {
        "file"
    }

    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), SkqError> {
        let path = self.path_of(name)?;
        let tmp = self.dir.join(format!(".{name}.{SNAPSHOT_EXT}.tmp"));
        // Durable atomic write: the temp file's *bytes* are fsynced
        // before the rename publishes the name, and the parent
        // directory is fsynced after, so a power cut leaves either the
        // old snapshot or the complete new one — never a half-written
        // file under the published name and never a rename that
        // evaporates with the directory's unsynced metadata.
        let write = || -> Result<(), SkqError> {
            let io =
                |e: std::io::Error| store_err("file", format!("writing {}: {e}", path.display()));
            let mut f = fs::File::create(&tmp).map_err(io)?;
            f.write_all(bytes).map_err(io)?;
            sync_file(&f, &tmp)?;
            fs::rename(&tmp, &path).map_err(io)?;
            sync_dir(&self.dir)
        };
        write().inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, SkqError> {
        let path = self.path_of(name)?;
        fs::read(&path).map_err(|e| store_err("file", format!("reading {}: {e}", path.display())))
    }

    fn list(&self) -> Result<Vec<String>, SkqError> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| store_err("file", format!("listing {}: {e}", self.dir.display())))?;
        for entry in entries {
            let entry = entry
                .map_err(|e| store_err("file", format!("listing {}: {e}", self.dir.display())))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(SNAPSHOT_EXT) {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if validate_name(stem).is_ok() {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;
    use skq_core::dataset::Dataset;
    use skq_core::suite::OrpKwSuite;
    use skq_geom::{Point, Rect};

    fn suite() -> OrpKwSuite {
        let data = Dataset::from_parts(
            (0..64)
                .map(|i| {
                    let p = Point::new2((i % 8) as f64, (i / 8) as f64);
                    (p, vec![0, 1 + (i % 3)])
                })
                .collect(),
        );
        OrpKwSuite::build(&data, 3)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("skq-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mem_backend_round_trips() {
        let store = MemBackend::new();
        let s = suite();
        let written = store.save("a", &s).unwrap();
        assert!(written > 0);
        let loaded: OrpKwSuite = store.load("a").unwrap();
        let q = Rect::full(2);
        assert_eq!(loaded.query(&q, &[0, 1]), s.query(&q, &[0, 1]));
        assert_eq!(store.list().unwrap(), vec!["a".to_string()]);
    }

    #[test]
    fn mem_backend_missing_name_is_store_error() {
        let store = MemBackend::new();
        let err = store.load::<OrpKwSuite>("absent").err().unwrap();
        assert!(matches!(err, SkqError::Store { .. }), "{err}");
    }

    #[test]
    fn file_backend_round_trips_and_lists() {
        let dir = temp_dir("rt");
        let store = FileBackend::new(&dir).unwrap();
        let s = suite();
        store.save("snap-1", &s).unwrap();
        store.save("snap-2", &s).unwrap();
        assert_eq!(
            store.list().unwrap(),
            vec!["snap-1".to_string(), "snap-2".to_string()]
        );
        let loaded: OrpKwSuite = store.load("snap-1").unwrap();
        let q = Rect::new(&[1.0, 1.0], &[6.0, 6.0]);
        assert_eq!(loaded.query(&q, &[0, 1]), s.query(&q, &[0, 1]));
        assert!(store.path_of("snap-1").unwrap().exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_rejects_traversal_names() {
        let dir = temp_dir("names");
        let store = FileBackend::new(&dir).unwrap();
        for bad in ["../evil", "a/b", "", ".hidden", "a\0b"] {
            assert!(store.put(bad, b"x").is_err(), "accepted {bad:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_loads_as_typed_error_and_counts() {
        let dir = temp_dir("corrupt");
        let store = FileBackend::new(&dir).unwrap();
        let s = suite();
        store.save("ok", &s).unwrap();
        let path = store.path_of("ok").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let before = skq_obs::global()
            .counter_value("skq_store_corruption_total", &[("backend", "file")])
            .unwrap_or(0);
        let err = store.load::<OrpKwSuite>("ok").err().unwrap();
        assert!(matches!(err, SkqError::Corrupted { .. }), "{err}");
        let after = skq_obs::global()
            .counter_value("skq_store_corruption_total", &[("backend", "file")])
            .unwrap_or(0);
        assert_eq!(after, before + 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_twice_is_byte_identical() {
        let s = suite();
        assert_eq!(s.to_bytes().unwrap(), s.to_bytes().unwrap());
    }
}
