//! Write-ahead log for [`DynamicOrpKw`] mutations.
//!
//! Every acknowledged insert/delete is first made durable here so a
//! crash between checkpoints loses nothing: recovery loads the newest
//! checkpoint and replays the tail of this log (see
//! [`durable`](crate::durable) and DESIGN §16 for the normative format
//! and state machine).
//!
//! # Record format
//!
//! ```text
//! magic "SKWR" (4) | body_len u32 LE (4) | fnv1a64(body) u64 LE (8) | body
//! body := lsn uv | tag uv | payload
//! tag 1 (insert): id uv | dim uv | dim × f64 LE | kw_count uv | kw uv …
//! tag 2 (delete): id uv
//! ```
//!
//! `uv` is the same LEB128 varint the paged snapshot codec uses
//! ([`persist::put_uv`]), and the checksum is the same
//! [`persist::fnv1a64`] — one corruption model across the whole
//! persistence tier. Records are self-delimiting and checksummed
//! individually so a torn tail (the crash truncated the last record
//! mid-write) is distinguishable from interior corruption: replay
//! accepts every whole valid record and stops at the first damage.
//!
//! # Segments
//!
//! The log is a directory of segment files `wal-<first_lsn:020>.log`;
//! the highest-named segment is active and appends go to its end. A
//! segment rotates once it exceeds [`WalConfig::segment_bytes`], and
//! checkpointing deletes whole segments whose records are all covered
//! (see [`Wal::truncate_through`]) — truncation is never a byte-level
//! rewrite of a live file.
//!
//! [`DynamicOrpKw`]: skq_core::dynamic::DynamicOrpKw

use std::fs;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use skq_core::error::SkqError;
use skq_core::failpoints;
use skq_core::persist::{self, fnv1a64};
use skq_geom::Point;
use skq_invidx::Keyword;

use crate::{store_err, sync_dir, sync_file};

/// Magic prefix of every WAL record.
pub const RECORD_MAGIC: &[u8; 4] = b"SKWR";

/// Fixed bytes before a record's body: magic, body length, checksum.
pub const RECORD_HEADER_BYTES: usize = 4 + 4 + 8;

/// Upper bound on a record body — a sanity check against interpreting
/// corrupt length bytes as a multi-gigabyte allocation.
const MAX_BODY_BYTES: u32 = 1 << 24;

/// Segment file name for the segment whose first record is `lsn`.
fn segment_name(first_lsn: u64) -> String {
    format!("wal-{first_lsn:020}.log")
}

fn wal_err(message: String) -> SkqError {
    store_err("wal", message)
}

fn wal_corrupt(detail: String) -> SkqError {
    SkqError::Corrupted {
        section: "wal_record".to_string(),
        detail,
    }
}

/// One logged mutation, the unit of replay.
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// An object insertion, carrying the id the live index assigned so
    /// replay reconstructs the identical handle.
    Insert {
        /// Handle id assigned by `DynamicOrpKw`.
        id: u64,
        /// The object's point.
        point: Point,
        /// The object's keyword set (non-empty, sorted as given).
        keywords: Vec<Keyword>,
    },
    /// A deletion by handle id.
    Delete {
        /// Handle id of the deleted object.
        id: u64,
    },
}

impl WalOp {
    fn tag(&self) -> u64 {
        match self {
            WalOp::Insert { .. } => 1,
            WalOp::Delete { .. } => 2,
        }
    }
}

/// A decoded WAL record: its log sequence number and operation.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Strictly increasing log sequence number (first record is 1).
    pub lsn: u64,
    /// The logged mutation.
    pub op: WalOp,
}

/// When appends are made durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync after every append — an acknowledged op survives any
    /// crash. The default, and the only policy under which the
    /// recovered-equals-acknowledged property is exact.
    Always,
    /// Fsync after every `n` appends — bounded loss window, higher
    /// throughput. `EveryN(1)` is equivalent to `Always`.
    EveryN(u64),
    /// Never fsync from the WAL (the OS flushes when it pleases).
    /// For tests and throwaway indexes only.
    Never,
}

/// WAL tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Durability policy for appends.
    pub sync: SyncPolicy,
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            sync: SyncPolicy::Always,
            segment_bytes: 4 << 20,
        }
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalScan {
    /// Every valid record, in lsn order.
    pub records: Vec<WalRecord>,
    /// Whether a torn tail (or interior damage) was truncated away.
    pub torn_tail: bool,
    /// Total valid bytes scanned across all segments.
    pub bytes: u64,
}

/// Result of decoding one segment's bytes (pure, for the corruption
/// battery as much as for [`Wal::open`]).
#[derive(Debug)]
pub struct SegmentScan {
    /// The whole valid records found, in order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of the last valid record.
    pub valid_len: u64,
    /// The typed error that stopped the scan, if the segment did not
    /// end exactly on a record boundary.
    pub error: Option<SkqError>,
}

/// Encodes one record (header + body) for `lsn`.
pub fn encode_record(lsn: u64, op: &WalOp) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    persist::put_uv(&mut body, lsn);
    persist::put_uv(&mut body, op.tag());
    match op {
        WalOp::Insert {
            id,
            point,
            keywords,
        } => {
            persist::put_uv(&mut body, *id);
            persist::put_uv(&mut body, point.dim() as u64);
            for d in 0..point.dim() {
                persist::put_f64(&mut body, point.get(d));
            }
            persist::put_uv(&mut body, keywords.len() as u64);
            for kw in keywords {
                persist::put_uv(&mut body, u64::from(*kw));
            }
        }
        WalOp::Delete { id } => persist::put_uv(&mut body, *id),
    }
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + body.len());
    out.extend_from_slice(RECORD_MAGIC);
    out.extend_from_slice(&u32::try_from(body.len()).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// LEB128 decode, the read twin of [`persist::put_uv`]. Local because
/// the snapshot codec's `Dec` is page-scoped.
fn get_uv(bytes: &[u8], pos: &mut usize) -> Result<u64, SkqError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*pos)
            .ok_or_else(|| wal_corrupt("varint runs past the record body".to_string()))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(wal_corrupt("varint overflows u64".to_string()));
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Decodes a record body (past the header) into its op.
fn decode_body(body: &[u8]) -> Result<WalRecord, SkqError> {
    let mut pos = 0usize;
    let lsn = get_uv(body, &mut pos)?;
    if lsn == 0 {
        return Err(wal_corrupt("lsn 0 is reserved".to_string()));
    }
    let tag = get_uv(body, &mut pos)?;
    let op = match tag {
        1 => {
            let id = get_uv(body, &mut pos)?;
            let dim = get_uv(body, &mut pos)?;
            if dim == 0 || dim > skq_geom::MAX_DIM as u64 {
                return Err(wal_corrupt(format!("insert dimension {dim} out of range")));
            }
            let dim = dim as usize;
            if body.len() - pos < dim * 8 {
                return Err(wal_corrupt("insert coordinates truncated".to_string()));
            }
            let mut coords = Vec::with_capacity(dim);
            for _ in 0..dim {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&body[pos..pos + 8]);
                pos += 8;
                let x = f64::from_le_bytes(raw);
                if !x.is_finite() {
                    return Err(wal_corrupt(format!("non-finite coordinate {x}")));
                }
                coords.push(x);
            }
            let kw_count = get_uv(body, &mut pos)?;
            if kw_count == 0 || kw_count > body.len() as u64 {
                return Err(wal_corrupt(format!(
                    "keyword count {kw_count} out of range"
                )));
            }
            let mut keywords = Vec::with_capacity(kw_count as usize);
            for _ in 0..kw_count {
                let kw = get_uv(body, &mut pos)?;
                let kw = u32::try_from(kw)
                    .map_err(|_| wal_corrupt(format!("keyword {kw} exceeds u32")))?;
                keywords.push(kw);
            }
            WalOp::Insert {
                id,
                point: Point::new(&coords),
                keywords,
            }
        }
        2 => WalOp::Delete {
            id: get_uv(body, &mut pos)?,
        },
        other => return Err(wal_corrupt(format!("unknown record tag {other}"))),
    };
    if pos != body.len() {
        return Err(wal_corrupt(format!(
            "{} trailing bytes after the record payload",
            body.len() - pos
        )));
    }
    Ok(WalRecord { lsn, op })
}

/// Decodes a segment's bytes into whole valid records.
///
/// Scanning stops at the first damage — a short header, bad magic, an
/// oversized length, a checksum mismatch, or an undecodable body — and
/// reports the typed error plus the byte offset where the valid prefix
/// ends. A segment ending exactly on a record boundary has
/// `error: None`. Never panics, whatever the bytes.
pub fn decode_segment(bytes: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let error = loop {
        if pos == bytes.len() {
            break None;
        }
        let rest = &bytes[pos..];
        if rest.len() < RECORD_HEADER_BYTES {
            break Some(wal_corrupt(format!(
                "{}-byte tail is shorter than a record header",
                rest.len()
            )));
        }
        if &rest[..4] != RECORD_MAGIC {
            break Some(wal_corrupt("bad record magic".to_string()));
        }
        let body_len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if body_len == 0 || body_len > MAX_BODY_BYTES {
            break Some(wal_corrupt(format!("body length {body_len} out of range")));
        }
        let body_len = body_len as usize;
        if rest.len() - RECORD_HEADER_BYTES < body_len {
            break Some(wal_corrupt(format!(
                "record body truncated: need {body_len} bytes, have {}",
                rest.len() - RECORD_HEADER_BYTES
            )));
        }
        let want = u64::from_le_bytes([
            rest[8], rest[9], rest[10], rest[11], rest[12], rest[13], rest[14], rest[15],
        ]);
        let body = &rest[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + body_len];
        if fnv1a64(body) != want {
            break Some(wal_corrupt("record checksum mismatch".to_string()));
        }
        match decode_body(body) {
            Ok(rec) => {
                if let Some(prev) = records.last() {
                    let prev: &WalRecord = prev;
                    if rec.lsn <= prev.lsn {
                        break Some(wal_corrupt(format!(
                            "lsn {} does not advance past {}",
                            rec.lsn, prev.lsn
                        )));
                    }
                }
                records.push(rec);
                pos += RECORD_HEADER_BYTES + body_len;
            }
            Err(e) => break Some(e),
        }
    };
    SegmentScan {
        records,
        valid_len: pos as u64,
        error,
    }
}

/// The append-only, checksummed, segmented write-ahead log.
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    /// Active segment file, positioned at its end.
    file: fs::File,
    /// First lsn of the active segment (its name).
    seg_start: u64,
    /// Bytes currently in the active segment.
    seg_bytes: u64,
    /// First lsns of the closed (rotated-out) segments, ascending.
    closed: Vec<u64>,
    /// Highest lsn of each closed segment, parallel to `closed`.
    closed_last: Vec<u64>,
    next_lsn: u64,
    /// Appends since the last fsync (for [`SyncPolicy::EveryN`]).
    unsynced: u64,
    /// Total bytes appended since open (checkpoint pacing input).
    appended: u64,
}

impl Wal {
    /// Opens (or creates) the log in `dir`, replay-scanning every
    /// segment.
    ///
    /// Torn tails are tolerated: the first damaged byte range in the
    /// highest segment is truncated away (`skq_wal_torn_tails_total`)
    /// and any later segments — which could only exist if the tear
    /// were interior damage — are deleted, so the log always reopens
    /// append-ready. The returned [`WalScan`] carries every surviving
    /// record for replay.
    ///
    /// # Errors
    ///
    /// `SkqError::Store` on I/O failure or an unparsable segment file
    /// name (damage to the directory itself is not self-healed).
    pub fn open(dir: &Path, config: WalConfig) -> Result<(Wal, WalScan), SkqError> {
        fs::create_dir_all(dir).map_err(|e| wal_err(format!("creating {}: {e}", dir.display())))?;
        let mut seg_starts: Vec<u64> = Vec::new();
        let entries =
            fs::read_dir(dir).map_err(|e| wal_err(format!("listing {}: {e}", dir.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| wal_err(format!("listing {}: {e}", dir.display())))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
            {
                let first: u64 = stem
                    .parse()
                    .map_err(|_| wal_err(format!("unparsable segment name {name}")))?;
                seg_starts.push(first);
            }
        }
        seg_starts.sort_unstable();

        let mut records: Vec<WalRecord> = Vec::new();
        let mut torn_tail = false;
        let mut bytes = 0u64;
        let mut closed: Vec<u64> = Vec::new();
        let mut closed_last: Vec<u64> = Vec::new();
        let mut active: Option<(u64, u64)> = None; // (first_lsn, valid_len)
        for (i, &first) in seg_starts.iter().enumerate() {
            let path = dir.join(segment_name(first));
            let mut raw = Vec::new();
            fs::File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut raw))
                .map_err(|e| wal_err(format!("reading {}: {e}", path.display())))?;
            let scan = decode_segment(&raw);
            bytes += scan.valid_len;
            if let Some(first_rec) = scan.records.first() {
                if first_rec.lsn != first {
                    return Err(wal_corrupt(format!(
                        "segment {} starts at lsn {}, not its named {first}",
                        path.display(),
                        first_rec.lsn
                    )));
                }
            }
            if let (Some(prev), Some(first_rec)) = (records.last(), scan.records.first()) {
                if first_rec.lsn <= prev.lsn {
                    return Err(wal_corrupt(format!(
                        "segment {} overlaps the previous segment (lsn {} ≤ {})",
                        path.display(),
                        first_rec.lsn,
                        prev.lsn
                    )));
                }
            }
            let last_lsn = scan.records.last().map(|r| r.lsn);
            records.extend(scan.records);
            if scan.error.is_some() {
                // Damage: truncate this segment to its valid prefix and
                // drop everything after it. (In the common case this IS
                // the last segment and the damage is a torn tail.)
                torn_tail = true;
                skq_obs::global()
                    .counter("skq_wal_torn_tails_total", &[])
                    .inc();
                let f = fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| wal_err(format!("opening {}: {e}", path.display())))?;
                f.set_len(scan.valid_len)
                    .map_err(|e| wal_err(format!("truncating {}: {e}", path.display())))?;
                sync_file(&f, &path)?;
                for &later in &seg_starts[i + 1..] {
                    let p = dir.join(segment_name(later));
                    fs::remove_file(&p)
                        .map_err(|e| wal_err(format!("removing {}: {e}", p.display())))?;
                }
                sync_dir(dir)?;
                active = Some((first, scan.valid_len));
                break;
            }
            if i + 1 == seg_starts.len() {
                active = Some((first, scan.valid_len));
            } else {
                closed.push(first);
                // An empty closed segment can only arise from a crash
                // mid-rotation; record an impossible last-lsn of
                // `first - 1` so truncation treats it as fully covered.
                closed_last.push(last_lsn.unwrap_or(first.saturating_sub(1)));
            }
        }

        let next_lsn = records.last().map_or(1, |r| r.lsn + 1);
        let (seg_start, seg_bytes) = match active {
            Some(s) => s,
            None => (next_lsn, 0),
        };
        let path = dir.join(segment_name(seg_start));
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| wal_err(format!("opening {}: {e}", path.display())))?;
        // `append` positions at the (possibly truncated) end lazily on
        // write; make the offset explicit so rollback arithmetic holds.
        file.seek(SeekFrom::Start(seg_bytes))
            .map_err(|e| wal_err(format!("seeking {}: {e}", path.display())))?;
        sync_dir(dir)?;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                config,
                file,
                seg_start,
                seg_bytes,
                closed,
                closed_last,
                next_lsn,
                unsynced: 0,
                appended: 0,
            },
            WalScan {
                records,
                torn_tail,
                bytes,
            },
        ))
    }

    /// The lsn the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Total bytes appended since this `Wal` was opened.
    pub fn bytes_appended(&self) -> u64 {
        self.appended
    }

    /// Appends one op, returning its lsn.
    ///
    /// The append is all-or-nothing: on any failure — the
    /// `store::wal_append` fail point, a write error, or a failed
    /// fsync under [`SyncPolicy::Always`] — the segment is rolled back
    /// to its prior length, so a record the caller did not get an lsn
    /// for is never visible to recovery. That exactness is what lets
    /// the chaos battery assert recovered == acknowledged.
    ///
    /// # Errors
    ///
    /// `SkqError::Store` on I/O failure, `Internal` from the fail
    /// point.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, SkqError> {
        let _span = skq_obs::Span::enter("wal.append");
        failpoints::check("store::wal_append")?;
        if self.seg_bytes >= self.config.segment_bytes {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        let bytes = encode_record(lsn, op);
        let prior = self.seg_bytes;
        let path = self.dir.join(segment_name(self.seg_start));
        let result = (|| -> Result<(), SkqError> {
            self.file
                .write_all(&bytes)
                .map_err(|e| wal_err(format!("appending to {}: {e}", path.display())))?;
            match self.config.sync {
                SyncPolicy::Always => sync_file(&self.file, &path)?,
                SyncPolicy::EveryN(n) => {
                    self.unsynced += 1;
                    if self.unsynced >= n.max(1) {
                        sync_file(&self.file, &path)?;
                        self.unsynced = 0;
                    }
                }
                SyncPolicy::Never => {}
            }
            Ok(())
        })();
        if let Err(e) = result {
            // Undo the (possibly partial, possibly unsynced) write so
            // the unacknowledged record cannot survive to replay.
            let _ = self.file.set_len(prior);
            let _ = self.file.seek(SeekFrom::Start(prior));
            return Err(e);
        }
        self.seg_bytes += bytes.len() as u64;
        self.appended += bytes.len() as u64;
        self.next_lsn = lsn + 1;
        skq_obs::global()
            .counter("skq_wal_appends_total", &[])
            .inc();
        skq_obs::global()
            .counter("skq_wal_bytes_written_total", &[])
            .add(bytes.len() as u64);
        Ok(lsn)
    }

    /// Forces an fsync of the active segment regardless of policy.
    ///
    /// # Errors
    ///
    /// `SkqError::Store` on I/O failure.
    pub fn sync(&mut self) -> Result<(), SkqError> {
        let path = self.dir.join(segment_name(self.seg_start));
        sync_file(&self.file, &path)?;
        self.unsynced = 0;
        Ok(())
    }

    /// Closes the active segment and starts a fresh one at `next_lsn`.
    fn rotate(&mut self) -> Result<(), SkqError> {
        self.sync()?;
        self.closed.push(self.seg_start);
        self.closed_last.push(self.next_lsn - 1);
        self.seg_start = self.next_lsn;
        self.seg_bytes = 0;
        let path = self.dir.join(segment_name(self.seg_start));
        self.file = fs::OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(|e| wal_err(format!("creating {}: {e}", path.display())))?;
        sync_dir(&self.dir)
    }

    /// Discards records with lsn ≤ `through` — called after a
    /// checkpoint at `through` makes them redundant.
    ///
    /// Truncation is segment-granular: the active segment is rotated
    /// out first, then every closed segment wholly covered by
    /// `through` is deleted. A crash mid-way leaves extra covered
    /// records behind, which recovery replays idempotently; it never
    /// loses uncovered ones.
    ///
    /// # Errors
    ///
    /// `SkqError::Store` on I/O failure.
    pub fn truncate_through(&mut self, through: u64) -> Result<(), SkqError> {
        // The active segment can contain covered records only if it
        // starts at or before `through`; rotate it out so those become
        // part of a deletable closed segment.
        if self.seg_bytes > 0 && self.seg_start <= through {
            self.rotate()?;
        }
        let mut kept = Vec::new();
        let mut kept_last = Vec::new();
        for (&first, &last) in self.closed.iter().zip(&self.closed_last) {
            if last <= through {
                let p = self.dir.join(segment_name(first));
                fs::remove_file(&p)
                    .map_err(|e| wal_err(format!("removing {}: {e}", p.display())))?;
            } else {
                kept.push(first);
                kept_last.push(last);
            }
        }
        self.closed = kept;
        self.closed_last = kept_last;
        sync_dir(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("skq-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn ins(id: u64) -> WalOp {
        WalOp::Insert {
            id,
            point: Point::new2(id as f64, -(id as f64)),
            keywords: vec![1, 2, 3],
        }
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let dir = tmpdir("roundtrip");
        let mut ops = Vec::new();
        {
            let (mut wal, scan) = Wal::open(&dir, WalConfig::default()).expect("open");
            assert!(scan.records.is_empty());
            for i in 0..20u64 {
                let op = if i % 3 == 2 {
                    WalOp::Delete { id: i / 3 }
                } else {
                    ins(i)
                };
                let lsn = wal.append(&op).expect("append");
                assert_eq!(lsn, i + 1);
                ops.push(op);
            }
        }
        let (_, scan) = Wal::open(&dir, WalConfig::default()).expect("reopen");
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), 20);
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64 + 1);
            assert_eq!(rec.op, ops[i]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spreads_records_over_segments_and_truncates() {
        let dir = tmpdir("rotate");
        let config = WalConfig {
            sync: SyncPolicy::Never,
            segment_bytes: 128,
        };
        {
            let (mut wal, _) = Wal::open(&dir, config).expect("open");
            for i in 0..50u64 {
                wal.append(&ins(i)).expect("append");
            }
            wal.sync().expect("sync");
        }
        let segs = fs::read_dir(&dir).expect("list").count();
        assert!(segs > 1, "expected rotation, found {segs} segment(s)");
        let (mut wal, scan) = Wal::open(&dir, config).expect("reopen");
        assert_eq!(scan.records.len(), 50);
        wal.truncate_through(40).expect("truncate");
        drop(wal);
        let (_, scan) = Wal::open(&dir, config).expect("re-reopen");
        assert!(!scan.torn_tail);
        // Truncation is segment-granular: lsns > 40 all survive, and
        // what survives is a contiguous suffix ending at 50.
        let lsns: Vec<u64> = scan.records.iter().map(|r| r.lsn).collect();
        assert_eq!(*lsns.last().expect("tail"), 50);
        assert!(*lsns.first().expect("head") <= 41);
        for w in lsns.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        {
            let (mut wal, _) = Wal::open(&dir, WalConfig::default()).expect("open");
            for i in 0..5u64 {
                wal.append(&ins(i)).expect("append");
            }
        }
        let seg = dir.join(segment_name(1));
        let bytes = fs::read(&seg).expect("read");
        fs::write(&seg, &bytes[..bytes.len() - 3]).expect("tear");
        let (mut wal, scan) = Wal::open(&dir, WalConfig::default()).expect("reopen");
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 4);
        // The log is append-ready after healing.
        let lsn = wal.append(&ins(99)).expect("append after tear");
        assert_eq!(lsn, 5);
        drop(wal);
        let (_, scan) = Wal::open(&dir, WalConfig::default()).expect("re-reopen");
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_segment_flags_bit_flips_typed() {
        let mut bytes = Vec::new();
        for i in 0..4u64 {
            bytes.extend_from_slice(&encode_record(i + 1, &ins(i)));
        }
        let clean = decode_segment(&bytes);
        assert_eq!(clean.records.len(), 4);
        assert!(clean.error.is_none());
        for pos in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let scan = decode_segment(&bad);
            if let Some(e) = scan.error {
                assert!(
                    matches!(e, SkqError::Corrupted { .. }),
                    "wanted Corrupted, got {e:?}"
                );
            }
            assert!(scan.records.len() <= 4);
        }
    }
}
