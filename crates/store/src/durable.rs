//! Crash-safe wrapper around [`DynamicOrpKw`]: WAL + checkpoints +
//! recovery.
//!
//! [`DurableDynamic`] owns a live dynamic index, a [`Wal`], and an
//! [`IndexBackend`] holding checkpoints. Every acknowledged mutation
//! is durable in the WAL before (deletes) or atomically with (inserts)
//! the acknowledgement; a [`CheckpointPolicy`] periodically snapshots
//! the whole index through the paged [`Persist`](crate::Persist) codec and truncates
//! the log. [`DurableDynamic::open`] is the recovery state machine:
//! newest valid checkpoint, then WAL replay of the tail — see DESIGN
//! §16 for the normative description.
//!
//! [`DynamicOrpKw`]: skq_core::dynamic::DynamicOrpKw

use std::path::Path;

use skq_core::dynamic::{DynamicOrpKw, ObjectHandle};
use skq_core::error::SkqError;
use skq_core::failpoints;
use skq_geom::Point;
use skq_invidx::Keyword;

use crate::wal::{SyncPolicy, Wal, WalConfig, WalOp};
use crate::{FileBackend, IndexBackend};

/// Checkpoint name for the snapshot covering lsns ≤ `lsn`.
fn checkpoint_name(lsn: u64) -> String {
    format!("ckpt-{lsn:020}")
}

/// Parses a checkpoint name back to its covered lsn.
fn checkpoint_lsn(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-").and_then(|s| s.parse().ok())
}

/// When to cut a checkpoint and truncate the WAL.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointPolicy {
    /// Checkpoint after this many logged ops since the last one.
    pub every_ops: u64,
    /// … or after this many WAL bytes, whichever comes first.
    pub every_bytes: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_ops: 1024,
            every_bytes: 1 << 20,
        }
    }
}

impl CheckpointPolicy {
    /// Whether `ops`/`bytes` accumulated since the last checkpoint
    /// trigger one now.
    pub fn due(&self, ops: u64, bytes: u64) -> bool {
        (self.every_ops > 0 && ops >= self.every_ops)
            || (self.every_bytes > 0 && bytes >= self.every_bytes)
    }
}

/// Durability knobs for [`DurableDynamic`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DurabilityConfig {
    /// WAL sync/rotation policy.
    pub wal: WalConfig,
    /// Checkpoint cadence.
    pub checkpoint: CheckpointPolicy,
}

impl DurabilityConfig {
    /// A configuration for tests: no fsync, tiny segments, checkpoint
    /// every `every_ops` ops.
    pub fn fast(every_ops: u64) -> Self {
        DurabilityConfig {
            wal: WalConfig {
                sync: SyncPolicy::Never,
                segment_bytes: 4096,
            },
            checkpoint: CheckpointPolicy {
                every_ops,
                every_bytes: u64::MAX,
            },
        }
    }
}

/// What [`DurableDynamic::open`] did to reach a published state.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Lsn covered by the checkpoint that seeded the state (0 = none).
    pub checkpoint_lsn: u64,
    /// Highest lsn seen anywhere (checkpoint or WAL); the index state
    /// reflects exactly the acknowledged ops `1..=last_lsn`.
    pub last_lsn: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Poisoned WAL records skipped during replay (each with a typed
    /// reason on `skq_wal_records_skipped_total`).
    pub skipped: u64,
    /// Whether the WAL had a torn tail truncated away.
    pub torn_tail: bool,
    /// Corrupt checkpoints discarded before a valid one loaded.
    pub checkpoints_discarded: u64,
}

/// A crash-safe [`DynamicOrpKw`]: write-ahead logged, periodically
/// checkpointed, recoverable via [`open`](DurableDynamic::open).
pub struct DurableDynamic {
    index: DynamicOrpKw,
    wal: Wal,
    backend: FileBackend,
    config: DurabilityConfig,
    /// Lsn covered by the newest durable checkpoint.
    ckpt_lsn: u64,
    /// Ops logged since that checkpoint.
    ops_since: u64,
    /// `wal.bytes_appended()` at that checkpoint.
    bytes_mark: u64,
}

impl DurableDynamic {
    /// Creates a fresh durable index in `dir` (`dim`, `k` as in
    /// [`DynamicOrpKw::new`]) or recovers the one already there.
    ///
    /// Recovery: load the newest checkpoint whose snapshot validates
    /// (corrupt ones are discarded and counted, falling back to older
    /// checkpoints and finally to an empty index), then replay every
    /// WAL record with lsn beyond the checkpoint. Poisoned records are
    /// skipped with a typed reason rather than aborting recovery —
    /// the WAL's per-record checksums make a decode-level tear stop
    /// the scan instead (see [`Wal::open`]). With `debug-invariants`
    /// the recovered index is deep-validated before being returned.
    ///
    /// # Errors
    ///
    /// `SkqError::Store` if the directory or WAL is unusable, or if
    /// `dim`/`k` conflict with a recovered checkpoint.
    pub fn open(
        dir: &Path,
        dim: usize,
        k: usize,
        config: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), SkqError> {
        let _span = skq_obs::Span::enter("recover.replay");
        let result = Self::open_inner(dir, dim, k, config);
        let outcome = match &result {
            Ok(_) => "ok",
            Err(_) => "error",
        };
        skq_obs::global()
            .counter("skq_recover_total", &[("outcome", outcome)])
            .inc();
        result
    }

    fn open_inner(
        dir: &Path,
        dim: usize,
        k: usize,
        config: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), SkqError> {
        let backend = FileBackend::new(dir)?;
        let mut report = RecoveryReport::default();

        // Newest-valid-checkpoint-wins: try each snapshot from newest
        // to oldest, discarding (and counting) any that fail the typed
        // load path.
        let mut ckpts: Vec<u64> = backend
            .list()?
            .iter()
            .filter_map(|n| checkpoint_lsn(n))
            .collect();
        ckpts.sort_unstable_by(|a, b| b.cmp(a));
        let mut index: Option<DynamicOrpKw> = None;
        for &lsn in &ckpts {
            match backend.load::<DynamicOrpKw>(&checkpoint_name(lsn)) {
                Ok(ix) => {
                    index = Some(ix);
                    report.checkpoint_lsn = lsn;
                    break;
                }
                Err(_) => {
                    report.checkpoints_discarded += 1;
                    skq_obs::global()
                        .counter("skq_recover_checkpoints_discarded_total", &[])
                        .inc();
                }
            }
        }
        let mut index = index.unwrap_or_else(|| DynamicOrpKw::new(dim, k));
        if index.dim() != dim || index.k() != k {
            return Err(SkqError::Store {
                backend: "file".to_string(),
                message: format!(
                    "recovered checkpoint has dim {}, k {} but dim {dim}, k {k} was requested",
                    index.dim(),
                    index.k()
                ),
            });
        }

        let (wal, scan) = Wal::open(&dir.join("wal"), config.wal)?;
        report.torn_tail = scan.torn_tail;
        report.last_lsn = report.checkpoint_lsn;
        for rec in &scan.records {
            if rec.lsn > report.last_lsn {
                report.last_lsn = rec.lsn;
            }
            if rec.lsn <= report.checkpoint_lsn {
                continue; // Already inside the checkpoint.
            }
            let outcome = match &rec.op {
                WalOp::Insert {
                    id,
                    point,
                    keywords,
                } => index
                    .try_insert_with_id(*id, *point, keywords.clone())
                    .map(|_| ()),
                WalOp::Delete { id } => {
                    // Deleting a dead or unknown id is an idempotent
                    // no-op, exactly what partially-truncated logs need.
                    index.delete_by_id(*id);
                    Ok(())
                }
            };
            match outcome {
                Ok(()) => {
                    report.replayed += 1;
                    skq_obs::global()
                        .counter("skq_recover_replayed_total", &[])
                        .inc();
                }
                Err(e) => {
                    report.skipped += 1;
                    skq_obs::global()
                        .counter("skq_wal_records_skipped_total", &[("reason", e.kind())])
                        .inc();
                }
            }
        }

        #[cfg(feature = "debug-invariants")]
        index.validate().map_err(|v| SkqError::Corrupted {
            section: "recovered_index".to_string(),
            detail: v.to_string(),
        })?;

        let bytes_mark = wal.bytes_appended();
        let mut durable = DurableDynamic {
            index,
            wal,
            backend,
            config,
            ckpt_lsn: report.checkpoint_lsn,
            ops_since: report.replayed,
            bytes_mark,
        };
        // A long replay means the pre-crash process died with a large
        // un-checkpointed tail; cut one now so the next recovery is
        // short again. Failure is tolerated — everything is in the WAL.
        durable.maybe_checkpoint();
        Ok((durable, report))
    }

    /// The live index, for queries.
    pub fn index(&self) -> &DynamicOrpKw {
        &self.index
    }

    /// The checkpoint/WAL cadence in force.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// Inserts an object durably: applied to the live index, then
    /// logged; only a logged insert is acknowledged.
    ///
    /// Apply-then-log keeps handle allocation and the WAL in lockstep:
    /// if the log append fails the freshly applied object is rolled
    /// back by deletion, and — because the consumed id is recorded
    /// nowhere — the explicit-id replay path tolerates the gap.
    ///
    /// # Errors
    ///
    /// Whatever [`DynamicOrpKw::try_insert`] rejects, or
    /// `SkqError::Store` if the WAL append failed (the index is left
    /// as if the insert never happened).
    pub fn insert(
        &mut self,
        point: Point,
        keywords: Vec<Keyword>,
    ) -> Result<ObjectHandle, SkqError> {
        let handle = self.index.try_insert(point, keywords.clone())?;
        let op = WalOp::Insert {
            id: handle.id(),
            point,
            keywords,
        };
        if let Err(e) = self.wal.append(&op) {
            self.index.delete_by_id(handle.id());
            return Err(e);
        }
        self.after_op();
        Ok(handle)
    }

    /// Deletes an object durably: logged, then applied. Returns
    /// whether the object was live.
    ///
    /// Log-then-apply is safe here because replaying a delete of an
    /// already-dead id is a no-op; a crash between log and apply
    /// re-deletes on recovery.
    ///
    /// # Errors
    ///
    /// `SkqError::Store` if the WAL append failed (the object stays
    /// live).
    pub fn delete(&mut self, handle: ObjectHandle) -> Result<bool, SkqError> {
        if !self.index.contains(handle.id()) {
            return Ok(false);
        }
        self.wal.append(&WalOp::Delete { id: handle.id() })?;
        let was_live = self.index.delete(handle);
        self.after_op();
        Ok(was_live)
    }

    fn after_op(&mut self) {
        self.ops_since += 1;
        self.maybe_checkpoint();
    }

    /// Cuts a checkpoint if the policy says one is due, swallowing
    /// failure — the ops are already durable in the WAL, so a failed
    /// checkpoint costs replay time, not data.
    pub fn maybe_checkpoint(&mut self) {
        let bytes = self.wal.bytes_appended().saturating_sub(self.bytes_mark);
        if self.ops_since == 0 || !self.config.checkpoint.due(self.ops_since, bytes) {
            return;
        }
        let status = match self.checkpoint() {
            Ok(()) => "ok",
            Err(_) => "error",
        };
        skq_obs::global()
            .counter("skq_store_checkpoints_total", &[("status", status)])
            .inc();
    }

    /// Snapshots the live index covering every op logged so far, then
    /// truncates the WAL and prunes old checkpoints (the latest two
    /// are kept — the newest plus one fallback).
    ///
    /// # Errors
    ///
    /// `SkqError::Store` on snapshot or I/O failure — the index and
    /// WAL are unchanged, so nothing acknowledged is at risk.
    pub fn checkpoint(&mut self) -> Result<(), SkqError> {
        let _span = skq_obs::Span::enter("store.checkpoint");
        failpoints::check("store::checkpoint")?;
        let covered = self.wal.next_lsn() - 1;
        if covered == self.ckpt_lsn {
            return Ok(());
        }
        self.backend.save(&checkpoint_name(covered), &self.index)?;
        let previous = self.ckpt_lsn;
        self.ckpt_lsn = covered;
        self.ops_since = 0;
        self.bytes_mark = self.wal.bytes_appended();
        // Truncate only through the *previous* checkpoint: the WAL
        // keeps covering everything after the fallback checkpoint, so
        // recovery still reaches the present if the newest snapshot
        // turns out corrupt. Cleanup is best-effort — a leftover
        // segment wastes disk, never correctness.
        let _ = self.wal.truncate_through(previous);
        self.prune_checkpoints();
        Ok(())
    }

    fn prune_checkpoints(&self) {
        let Ok(names) = self.backend.list() else {
            return;
        };
        let mut lsns: Vec<u64> = names.iter().filter_map(|n| checkpoint_lsn(n)).collect();
        lsns.sort_unstable_by(|a, b| b.cmp(a));
        for &old in lsns.iter().skip(2) {
            if let Ok(path) = self.backend.path_of(&checkpoint_name(old)) {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skq_geom::Rect;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("skq-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn pt(i: u64) -> Point {
        Point::new2((i % 97) as f64, (i % 89) as f64)
    }

    fn kws(i: u64) -> Vec<Keyword> {
        vec![(i % 5) as Keyword, 100 + (i % 3) as Keyword]
    }

    #[test]
    fn recovers_exactly_the_acknowledged_ops() {
        let dir = tmpdir("ack");
        let mut acked: Vec<(u64, Point, Vec<Keyword>)> = Vec::new();
        {
            let (mut d, report) =
                DurableDynamic::open(&dir, 2, 2, DurabilityConfig::fast(64)).expect("open");
            assert_eq!(report.last_lsn, 0);
            for i in 0..300u64 {
                let h = d.insert(pt(i), kws(i)).expect("insert");
                acked.push((h.id(), pt(i), kws(i)));
                if i % 7 == 6 {
                    let (id, _, _) = acked[(i as usize) / 2];
                    d.delete_id_for_test(id);
                    acked.retain(|(a, _, _)| *a != id);
                }
            }
            // Process "crashes" here: no clean shutdown, WAL not synced
            // — SyncPolicy::Never still leaves bytes in the fs cache of
            // the same running OS, so a drop models a process kill.
        }
        let (d, report) =
            DurableDynamic::open(&dir, 2, 2, DurabilityConfig::fast(64)).expect("recover");
        assert_eq!(report.skipped, 0);
        assert!(
            report.replayed <= 64 + 1,
            "replay {} > budget",
            report.replayed
        );
        let mut live = d.index().live_objects();
        live.sort_by_key(|(id, _, _)| *id);
        acked.sort_by_key(|(id, _, _)| *id);
        assert_eq!(live.len(), acked.len());
        for ((lid, lp, lkw), (aid, ap, akw)) in live.iter().zip(&acked) {
            assert_eq!(lid, aid);
            assert_eq!(lp.coords(), ap.coords());
            assert_eq!(lkw, akw);
        }
        // And the recovered index answers queries.
        let hits = d
            .index()
            .query(&Rect::new(&[0.0, 0.0], &[100.0, 100.0]), &[0, 100]);
        let expect = acked
            .iter()
            .filter(|(_, _, kw)| kw == &vec![0, 100])
            .count();
        assert_eq!(hits.len(), expect);
        let _ = fs::remove_dir_all(&dir);
    }

    impl DurableDynamic {
        fn delete_id_for_test(&mut self, id: u64) {
            // Round-trip through the public surface.
            let h = self
                .index
                .live_objects()
                .iter()
                .find(|(a, _, _)| *a == id)
                .map(|_| id)
                .expect("live id");
            let _ = self.wal.append(&WalOp::Delete { id: h });
            self.index.delete_by_id(h);
            self.after_op();
        }
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older() {
        let dir = tmpdir("fallback");
        {
            let (mut d, _) =
                DurableDynamic::open(&dir, 2, 2, DurabilityConfig::fast(16)).expect("open");
            for i in 0..80u64 {
                d.insert(pt(i), kws(i)).expect("insert");
            }
        }
        // Trash the newest checkpoint's bytes.
        let names: Vec<String> = FileBackend::new(&dir)
            .expect("backend")
            .list()
            .expect("list")
            .into_iter()
            .filter(|n| n.starts_with("ckpt-"))
            .collect();
        let newest = names.iter().max().expect("a checkpoint");
        let path = FileBackend::new(&dir)
            .expect("b")
            .path_of(newest)
            .expect("p");
        let mut bytes = fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).expect("write");

        let (d, report) =
            DurableDynamic::open(&dir, 2, 2, DurabilityConfig::fast(16)).expect("recover");
        assert!(report.checkpoints_discarded >= 1);
        assert_eq!(d.index().live_objects().len(), 80);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_failure_is_tolerated_and_wal_covers() {
        let dir = tmpdir("ckptfail");
        {
            let (mut d, _) =
                DurableDynamic::open(&dir, 3, 2, DurabilityConfig::fast(8)).expect("open");
            // dim 3 routes block builds through the dim-reduction
            // engine whose index cannot snapshot yet: once a block
            // exists (past the 128-object buffer) checkpoints fail
            // typed, and the ops stay WAL-covered.
            for i in 0..200u64 {
                d.insert(Point::new3(i as f64, 1.0, 2.0), kws(i))
                    .expect("insert");
            }
            assert!(matches!(d.checkpoint(), Err(SkqError::Store { .. })));
        }
        let (d, report) =
            DurableDynamic::open(&dir, 3, 2, DurabilityConfig::fast(8)).expect("recover");
        // Buffer-only checkpoints (≤ 128 objects) may have succeeded;
        // everything after the first block build is replayed.
        assert!(report.checkpoint_lsn <= 128);
        assert_eq!(report.replayed, 200 - report.checkpoint_lsn);
        assert_eq!(d.index().live_objects().len(), 200);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dim_mismatch_with_checkpoint_is_typed() {
        let dir = tmpdir("mismatch");
        {
            let (mut d, _) =
                DurableDynamic::open(&dir, 2, 2, DurabilityConfig::fast(4)).expect("open");
            for i in 0..16u64 {
                d.insert(pt(i), kws(i)).expect("insert");
            }
        }
        let err = DurableDynamic::open(&dir, 2, 3, DurabilityConfig::fast(4))
            .err()
            .expect("mismatch must fail");
        assert!(matches!(err, SkqError::Store { .. }), "got {err:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
