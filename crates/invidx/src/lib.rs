//! Inverted-index substrate for keyword search.
//!
//! Keyword search — computing `D(w₁, …, w_k)`, the objects whose
//! documents contain all of `w₁, …, w_k` — is equivalent to `k`-set
//! intersection over an inverted index (paper §1.2). This crate provides:
//!
//! * [`Document`] — a deduplicated, sorted keyword set per object;
//! * [`Dictionary`] — a string ↔ keyword-id mapping for applications;
//! * [`InvertedIndex`] — postings lists with galloping `k`-way
//!   intersection, the "keywords only" naive solution of the paper's
//!   introduction;
//! * [`Analyzer`] — tokenization/normalization from free-form text to
//!   keyword documents;
//! * [`CompressedInvertedIndex`] — the same baseline at its production
//!   space footprint (delta + varint postings with skip tables).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compressed;
pub mod dict;
pub mod doc;
pub mod postings;
pub mod text;

pub use compressed::{CompressedInvertedIndex, CompressedPostings};
pub use dict::Dictionary;
pub use doc::Document;
pub use postings::InvertedIndex;
pub use text::Analyzer;

/// A keyword identifier (the paper treats keywords as integers in
/// `[1, W]`; we use 0-based `u32`).
pub type Keyword = u32;

/// An object identifier: the index of the object in its dataset.
pub type ObjectId = u32;
