//! Text processing: from free-form strings to keyword documents.
//!
//! The paper formulates documents as sets of integers; real systems
//! arrive at those sets by tokenizing text. [`Analyzer`] implements the
//! standard pipeline — lowercase, alphanumeric tokenization, stopword
//! removal, length filtering, light suffix normalization — and interns
//! tokens through a [`crate::Dictionary`], so its output
//! plugs directly into [`crate::Document`] and the indexes.

use crate::{Dictionary, Document, Keyword};

/// Default English stopwords (a deliberately small list: aggressive
/// stopping hurts recall more than it saves space at these scales).
const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "in",
    "is", "it", "its", "of", "on", "or", "that", "the", "their", "they", "this", "to", "was",
    "were", "will", "with",
];

/// A configurable text-to-keywords analyzer.
///
/// # Example
///
/// ```
/// use skq_invidx::Analyzer;
///
/// let mut analyzer = Analyzer::new();
/// let doc = analyzer.analyze("The hotel has two rooftop pools").unwrap();
/// // "pools" normalizes to "pool"; stopwords are dropped.
/// let pool = analyzer.dictionary().lookup("pool").unwrap();
/// assert!(doc.contains(pool));
/// ```
#[derive(Debug)]
pub struct Analyzer {
    dict: Dictionary,
    stopwords: Vec<String>,
    min_token_len: usize,
    normalize_suffixes: bool,
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl Analyzer {
    /// An analyzer with the default stopword list, minimum token length
    /// 2, and suffix normalization on.
    pub fn new() -> Self {
        Self {
            dict: Dictionary::new(),
            stopwords: DEFAULT_STOPWORDS.iter().map(|s| s.to_string()).collect(),
            min_token_len: 2,
            normalize_suffixes: true,
        }
    }

    /// Replaces the stopword list.
    #[must_use]
    pub fn with_stopwords(mut self, words: &[&str]) -> Self {
        self.stopwords = words.iter().map(|s| s.to_lowercase()).collect();
        self
    }

    /// Sets the minimum token length (shorter tokens are dropped).
    #[must_use]
    pub fn with_min_token_len(mut self, len: usize) -> Self {
        self.min_token_len = len;
        self
    }

    /// Enables/disables light plural/verb suffix normalization.
    #[must_use]
    pub fn with_suffix_normalization(mut self, on: bool) -> Self {
        self.normalize_suffixes = on;
        self
    }

    /// The dictionary accumulated so far (token ↔ keyword id).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Tokenizes `text` into normalized terms (no interning).
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(str::to_lowercase)
            .map(|t| {
                if self.normalize_suffixes {
                    normalize_suffix(&t)
                } else {
                    t
                }
            })
            .filter(|t| t.chars().count() >= self.min_token_len)
            .filter(|t| !self.stopwords.contains(t))
            .collect()
    }

    /// Analyzes `text` into a keyword set, interning new tokens.
    ///
    /// Returns `None` if no token survives the pipeline (the indexes
    /// require non-empty documents).
    pub fn analyze(&mut self, text: &str) -> Option<Document> {
        let kws: Vec<Keyword> = self
            .tokenize(text)
            .iter()
            .map(|t| self.dict.intern(t))
            .collect();
        if kws.is_empty() {
            None
        } else {
            Some(Document::new(kws))
        }
    }

    /// Maps query terms to keyword ids; terms never seen in any
    /// analyzed document yield `None` entries (such a query can be
    /// answered as empty without touching the index).
    pub fn query_terms(&self, terms: &[&str]) -> Vec<Option<Keyword>> {
        terms
            .iter()
            .flat_map(|t| {
                let toks = self.tokenize(t);
                if toks.is_empty() {
                    vec![None]
                } else {
                    toks.iter().map(|t| self.dict.lookup(t)).collect()
                }
            })
            .collect()
    }
}

/// Very light suffix normalization: `-ies → -y`, `-sses → -ss`,
/// trailing `-s` (but not `-ss`), `-ing`/`-ed` when a reasonable stem
/// remains. Not a stemmer — just enough to unify trivial inflection.
fn normalize_suffix(t: &str) -> String {
    let n = t.len();
    if let Some(stem) = t.strip_suffix("ies") {
        if n > 4 {
            return format!("{stem}y");
        }
    }
    if t.ends_with("sses") {
        return t[..n - 2].to_string();
    }
    if t.ends_with('s') && !t.ends_with("ss") && n > 3 {
        return t[..n - 1].to_string();
    }
    if let Some(stem) = t.strip_suffix("ing") {
        if stem.len() >= 4 {
            return stem.to_string();
        }
    }
    if let Some(stem) = t.strip_suffix("ed") {
        if stem.len() >= 4 {
            return stem.to_string();
        }
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basics() {
        let a = Analyzer::new();
        assert_eq!(
            a.tokenize("The hotel has a rooftop pool, free-parking & WiFi!"),
            vec!["hotel", "rooftop", "pool", "free", "park", "wifi"]
        );
    }

    #[test]
    fn stopwords_and_min_length() {
        let a = Analyzer::new().with_min_token_len(4);
        let toks = a.tokenize("it is a dog in the rain");
        assert_eq!(toks, vec!["rain"]);
    }

    #[test]
    fn suffix_normalization() {
        let a = Analyzer::new();
        assert_eq!(a.tokenize("cities"), vec!["city"]);
        assert_eq!(a.tokenize("hotels"), vec!["hotel"]);
        assert_eq!(a.tokenize("glasses"), vec!["glass"]);
        assert_eq!(a.tokenize("parking"), vec!["park"]);
        assert_eq!(a.tokenize("walking"), vec!["walk"]);
        assert_eq!(a.tokenize("walked"), vec!["walk"]);
        assert_eq!(a.tokenize("class"), vec!["class"]); // -ss preserved
    }

    #[test]
    fn normalization_can_be_disabled() {
        let a = Analyzer::new().with_suffix_normalization(false);
        assert_eq!(a.tokenize("hotels pools"), vec!["hotels", "pools"]);
        let b = Analyzer::new().with_stopwords(&["HOTELS"]);
        // Custom stopwords are lowercased; "hotels" normalizes to
        // "hotel" first, so the stopword no longer matches — document
        // that ordering explicitly.
        assert_eq!(b.tokenize("hotels"), vec!["hotel"]);
    }

    #[test]
    fn analyze_interns_consistently() {
        let mut a = Analyzer::new();
        let d1 = a.analyze("pools and gardens").unwrap();
        let d2 = a.analyze("a garden with a pool").unwrap();
        assert_eq!(d1.keywords(), d2.keywords());
    }

    #[test]
    fn empty_documents_rejected() {
        let mut a = Analyzer::new();
        assert!(a.analyze("the of and").is_none());
        assert!(a.analyze("!!! ---").is_none());
    }

    #[test]
    fn query_terms_roundtrip() {
        let mut a = Analyzer::new();
        a.analyze("rooftop pool with garden").unwrap();
        let q = a.query_terms(&["Pools", "garden", "sauna"]);
        assert!(q[0].is_some());
        assert!(q[1].is_some());
        assert!(q[2].is_none());
        assert_eq!(q[0], a.dictionary().lookup("pool"));
    }
}
