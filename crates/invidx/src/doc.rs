//! Documents: the keyword set attached to each object.
//!
//! In the paper, every object `e ∈ D` carries a non-empty document
//! `e.Doc`, a set of integers; the input size is `N = Σ_e |e.Doc|`.

use crate::Keyword;

/// A non-empty set of keywords, stored sorted and deduplicated so that
/// membership tests are `O(log |Doc|)` and set semantics are canonical.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Document {
    keywords: Vec<Keyword>,
}

impl Document {
    /// Creates a document from keywords (duplicates removed, order
    /// irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if `keywords` is empty — the paper requires non-empty
    /// documents.
    pub fn new(mut keywords: Vec<Keyword>) -> Self {
        assert!(!keywords.is_empty(), "documents must be non-empty");
        keywords.sort_unstable();
        keywords.dedup();
        Self { keywords }
    }

    /// The number of distinct keywords `|Doc|` (this object's
    /// contribution to the input size `N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// Never true: documents are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// The keywords in ascending order.
    #[inline]
    pub fn keywords(&self) -> &[Keyword] {
        &self.keywords
    }

    /// Whether the document contains keyword `w`.
    #[inline]
    pub fn contains(&self, w: Keyword) -> bool {
        self.keywords.binary_search(&w).is_ok()
    }

    /// Whether the document contains *all* the given keywords — the
    /// membership test the query algorithms run per candidate object
    /// (`O(k log |Doc|)`, a constant under the paper's model).
    pub fn contains_all(&self, ws: &[Keyword]) -> bool {
        ws.iter().all(|&w| self.contains(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let d = Document::new(vec![5, 1, 5, 3, 1]);
        assert_eq!(d.keywords(), &[1, 3, 5]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn membership() {
        let d = Document::new(vec![2, 4, 6]);
        assert!(d.contains(4));
        assert!(!d.contains(5));
        assert!(d.contains_all(&[2, 6]));
        assert!(!d.contains_all(&[2, 5]));
        assert!(d.contains_all(&[])); // vacuous
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_document_rejected() {
        let _ = Document::new(vec![]);
    }
}
