//! Delta + varint compressed postings lists.
//!
//! Production inverted indexes store postings compressed: sorted ids
//! are delta-encoded and varint-packed, with a skip table for random
//! probes. This matters for the paper's cost picture in two ways: the
//! "keywords only" baseline gets its realistic space footprint (often
//! well under one word per posting), and the speed comparison against
//! the framework index is fair to how systems actually deploy it.

use crate::{Document, Keyword, ObjectId};
use std::collections::HashMap;

/// Ids per skip block (decode at most this many to answer a probe).
const BLOCK: usize = 64;

/// A compressed, immutable postings list.
#[derive(Debug, Clone, Default)]
pub struct CompressedPostings {
    /// Varint-encoded deltas (first id is a delta from 0).
    bytes: Vec<u8>,
    /// One entry per block: `(first id in block, byte offset)`.
    skips: Vec<(ObjectId, u32)>,
    len: usize,
}

impl CompressedPostings {
    /// Compresses a strictly increasing id list.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is not strictly increasing.
    pub fn from_sorted(ids: &[ObjectId]) -> Self {
        let mut bytes = Vec::with_capacity(ids.len());
        let mut skips = Vec::with_capacity(ids.len() / BLOCK + 1);
        let mut prev = 0u32;
        for (i, &id) in ids.iter().enumerate() {
            if i > 0 {
                assert!(id > prev, "ids must be strictly increasing");
            }
            if i % BLOCK == 0 {
                skips.push((id, bytes.len() as u32));
                // Block starts encode the absolute id, so blocks are
                // independently decodable.
                write_varint(&mut bytes, id);
            } else {
                write_varint(&mut bytes, id - prev);
            }
            prev = id;
        }
        Self {
            bytes,
            skips,
            len: ids.len(),
        }
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes (skip table included).
    pub fn space_bytes(&self) -> usize {
        self.bytes.len() + self.skips.len() * 8 + 16
    }

    /// Decodes the full list.
    pub fn decode(&self) -> Vec<ObjectId> {
        let mut out = Vec::with_capacity(self.len);
        let mut pos = 0usize;
        let mut prev = 0u32;
        for i in 0..self.len {
            let v = read_varint(&self.bytes, &mut pos);
            prev = if i % BLOCK == 0 { v } else { prev + v };
            out.push(prev);
        }
        out
    }

    /// Whether `id` is present: binary search the skip table, then
    /// decode at most one block.
    pub fn contains(&self, id: ObjectId) -> bool {
        if self.len == 0 {
            return false;
        }
        // Last block whose first id is ≤ id.
        let block = match self.skips.partition_point(|&(first, _)| first <= id) {
            0 => return false,
            b => b - 1,
        };
        let mut pos = self.skips[block].1 as usize;
        let in_block = (self.len - block * BLOCK).min(BLOCK);
        let mut prev = 0u32;
        for i in 0..in_block {
            let v = read_varint(&self.bytes, &mut pos);
            prev = if i == 0 { v } else { prev + v };
            if prev == id {
                return true;
            }
            if prev > id {
                return false;
            }
        }
        false
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// A compressed inverted index: the "keywords only" baseline at its
/// production space footprint.
///
/// # Example
///
/// ```
/// use skq_invidx::{CompressedInvertedIndex, Document};
///
/// let docs = vec![
///     Document::new(vec![0, 1]),
///     Document::new(vec![1, 2]),
///     Document::new(vec![0, 1, 2]),
/// ];
/// let index = CompressedInvertedIndex::build(&docs);
/// assert_eq!(index.intersect(&[0, 1]), vec![0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct CompressedInvertedIndex {
    postings: HashMap<Keyword, CompressedPostings>,
    num_objects: usize,
    input_size: usize,
}

impl CompressedInvertedIndex {
    /// Builds the index from per-object documents.
    pub fn build(docs: &[Document]) -> Self {
        let mut raw: HashMap<Keyword, Vec<ObjectId>> = HashMap::new();
        let mut input_size = 0usize;
        for (i, doc) in docs.iter().enumerate() {
            input_size += doc.len();
            for &w in doc.keywords() {
                raw.entry(w).or_default().push(i as ObjectId);
            }
        }
        let postings = raw
            .into_iter()
            .map(|(w, ids)| (w, CompressedPostings::from_sorted(&ids)))
            .collect();
        Self {
            postings,
            num_objects: docs.len(),
            input_size,
        }
    }

    /// Total input size `N`.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Compressed index size in bytes.
    pub fn space_bytes(&self) -> usize {
        self.postings
            .values()
            .map(CompressedPostings::space_bytes)
            .sum()
    }

    /// Document frequency of `w`.
    pub fn len_of(&self, w: Keyword) -> usize {
        self.postings.get(&w).map_or(0, CompressedPostings::len)
    }

    /// `⋂ᵢ S_{wᵢ}`: decode the shortest list, probe the rest through
    /// their skip tables.
    pub fn intersect(&self, keywords: &[Keyword]) -> Vec<ObjectId> {
        if keywords.is_empty() {
            return (0..self.num_objects as ObjectId).collect();
        }
        let mut lists: Vec<&CompressedPostings> = Vec::with_capacity(keywords.len());
        for &w in keywords {
            match self.postings.get(&w) {
                Some(p) => lists.push(p),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|p| p.len());
        let (seed, rest) = lists.split_first().expect("non-empty");
        seed.decode()
            .into_iter()
            .filter(|&id| rest.iter().all(|p| p.contains(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InvertedIndex;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn roundtrip_small() {
        let ids = vec![0, 1, 5, 100, 101, 4000, 1_000_000];
        let p = CompressedPostings::from_sorted(&ids);
        assert_eq!(p.decode(), ids);
        for &id in &ids {
            assert!(p.contains(id), "{id}");
        }
        for id in [2, 99, 102, 999_999, 2_000_000] {
            assert!(!p.contains(id), "{id}");
        }
    }

    #[test]
    fn empty_list() {
        let p = CompressedPostings::from_sorted(&[]);
        assert!(p.is_empty());
        assert!(p.decode().is_empty());
        assert!(!p.contains(0));
    }

    #[test]
    fn multi_block_lists() {
        let ids: Vec<u32> = (0..1000).map(|i| i * 3 + 7).collect();
        let p = CompressedPostings::from_sorted(&ids);
        assert_eq!(p.decode(), ids);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let probe = rng.gen_range(0..3200);
            assert_eq!(
                p.contains(probe),
                ids.binary_search(&probe).is_ok(),
                "{probe}"
            );
        }
    }

    #[test]
    fn compression_actually_compresses() {
        // Dense ids → ~1 byte per posting, far below 4 (u32) or 8.
        let ids: Vec<u32> = (0..10_000).collect();
        let p = CompressedPostings::from_sorted(&ids);
        assert!(
            p.space_bytes() < 10_000 * 2,
            "{} bytes for 10k dense postings",
            p.space_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn duplicates_rejected() {
        let _ = CompressedPostings::from_sorted(&[1, 1]);
    }

    #[test]
    fn index_matches_uncompressed() {
        let mut rng = StdRng::seed_from_u64(2);
        let docs: Vec<Document> = (0..800)
            .map(|_| {
                Document::new(
                    (0..rng.gen_range(1..6))
                        .map(|_| rng.gen_range(0..15))
                        .collect(),
                )
            })
            .collect();
        let plain = InvertedIndex::build(&docs);
        let compressed = CompressedInvertedIndex::build(&docs);
        assert_eq!(plain.input_size(), compressed.input_size());
        for _ in 0..200 {
            let k = rng.gen_range(1..4);
            let kws: Vec<Keyword> = (0..k).map(|_| rng.gen_range(0..17)).collect();
            assert_eq!(
                plain.intersect(&kws),
                compressed.intersect(&kws),
                "keywords {kws:?}"
            );
        }
        // And it is actually smaller than one-word-per-posting.
        assert!(compressed.space_bytes() < plain.input_size() * 4);
    }
}
