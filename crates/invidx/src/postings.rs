//! Postings lists and `k`-way intersection.
//!
//! This is the classical inverted index of §1.2: for each keyword `w`, the
//! set `S_w` of ids of objects whose documents contain `w`, so that
//! `D(w₁, …, w_k) = ⋂ᵢ S_{wᵢ}`. Intersection runs in
//! `O(min|S| · k · log(max|S| / min|S|))` via galloping search — the
//! "keywords only" naive solution whose query time can degenerate to
//! `Θ(N)` even when `OUT = 0`, which is precisely the drawback the
//! paper's indexes remove.

use std::collections::HashMap;

use crate::{Document, Keyword, ObjectId};

/// An inverted index over a fixed collection of documents.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: HashMap<Keyword, Vec<ObjectId>>,
    /// Total input size `N = Σ |Doc|`.
    input_size: usize,
    num_objects: usize,
}

impl InvertedIndex {
    /// Builds the index; object `i` has document `docs[i]`.
    pub fn build(docs: &[Document]) -> Self {
        let mut postings: HashMap<Keyword, Vec<ObjectId>> = HashMap::new();
        let mut input_size = 0usize;
        for (i, doc) in docs.iter().enumerate() {
            input_size += doc.len();
            for &w in doc.keywords() {
                postings.entry(w).or_default().push(i as ObjectId);
            }
        }
        // Ids are pushed in increasing object order, so lists are sorted.
        Self {
            postings,
            input_size,
            num_objects: docs.len(),
        }
    }

    /// The input size `N = Σ |Doc|`.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// The number of objects indexed.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// The number of distinct keywords with non-empty postings.
    pub fn num_keywords(&self) -> usize {
        self.postings.len()
    }

    /// The postings list `S_w` (sorted by object id), empty if `w` is
    /// unknown.
    pub fn postings(&self, w: Keyword) -> &[ObjectId] {
        self.postings.get(&w).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The document frequency `|S_w|`.
    pub fn len_of(&self, w: Keyword) -> usize {
        self.postings(w).len()
    }

    /// Computes `D(w₁, …, w_k) = ⋂ᵢ S_{wᵢ}` by galloping intersection,
    /// seeded from the shortest list. Duplicated query keywords are
    /// harmless. Returns ids in ascending order.
    pub fn intersect(&self, keywords: &[Keyword]) -> Vec<ObjectId> {
        if keywords.is_empty() {
            return (0..self.num_objects as ObjectId).collect();
        }
        let mut lists: Vec<&[ObjectId]> = keywords.iter().map(|&w| self.postings(w)).collect();
        lists.sort_by_key(|l| l.len());
        if lists[0].is_empty() {
            return Vec::new();
        }
        let mut result: Vec<ObjectId> = lists[0].to_vec();
        for list in &lists[1..] {
            result = gallop_intersect(&result, list);
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Deep structural validation: every postings list must be non-empty
    /// (empty lists are never materialized), strictly ascending (the
    /// galloping intersection assumes it), in range, and the list
    /// lengths must sum to the recorded input size `N` (documents are
    /// deduplicated on construction, so each keyword contributes one
    /// posting). Unconditionally available — this crate is a leaf with
    /// no feature graph; `skq-core` re-exports it behind
    /// `debug-invariants`.
    ///
    /// # Errors
    ///
    /// A description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut total = 0usize;
        for (&w, list) in &self.postings {
            if list.is_empty() {
                return Err(format!("keyword {w}: empty postings list materialized"));
            }
            if let Some(pair) = list.windows(2).find(|pair| pair[0] >= pair[1]) {
                return Err(format!(
                    "keyword {w}: postings not strictly ascending at {} >= {}",
                    pair[0], pair[1]
                ));
            }
            let last = *list.last().expect("non-empty");
            if last as usize >= self.num_objects {
                return Err(format!(
                    "keyword {w}: posting {last} out of range for {} objects",
                    self.num_objects
                ));
            }
            total += list.len();
        }
        if total != self.input_size {
            return Err(format!(
                "postings sum to {total}, recorded input size is {}",
                self.input_size
            ));
        }
        Ok(())
    }

    /// Iterates `(keyword, postings)` pairs in ascending keyword
    /// order — the deterministic traversal the snapshot encoder needs
    /// (hash-map iteration order would not be byte-stable).
    pub fn entries(&self) -> impl Iterator<Item = (Keyword, &[ObjectId])> {
        let mut keys: Vec<Keyword> = self.postings.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().map(|w| (w, self.postings(w)))
    }

    /// Reassembles an index from decoded postings lists, recomputing
    /// the input size and running [`InvertedIndex::validate`] — the
    /// snapshot-load counterpart of [`InvertedIndex::build`].
    ///
    /// # Errors
    ///
    /// A description of the first structural violation: a duplicate
    /// keyword, or anything `validate` rejects (empty list, unsorted
    /// or out-of-range ids, inconsistent totals).
    pub fn try_from_postings(
        lists: Vec<(Keyword, Vec<ObjectId>)>,
        num_objects: usize,
    ) -> Result<Self, String> {
        let mut postings: HashMap<Keyword, Vec<ObjectId>> = HashMap::with_capacity(lists.len());
        let mut input_size = 0usize;
        for (w, ids) in lists {
            input_size += ids.len();
            if postings.insert(w, ids).is_some() {
                return Err(format!("keyword {w}: duplicate postings list"));
            }
        }
        let index = Self {
            postings,
            input_size,
            num_objects,
        };
        index.validate()?;
        Ok(index)
    }

    /// Whether the intersection is empty, with early exit.
    pub fn intersection_is_empty(&self, keywords: &[Keyword]) -> bool {
        if keywords.is_empty() {
            return self.num_objects == 0;
        }
        let mut lists: Vec<&[ObjectId]> = keywords.iter().map(|&w| self.postings(w)).collect();
        lists.sort_by_key(|l| l.len());
        let (probe, rest) = lists.split_first().expect("non-empty");
        'outer: for &id in probe.iter() {
            for list in rest {
                if !gallop_contains(list, id) {
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }
}

/// Intersects two sorted lists, galloping through the longer one.
///
/// For each probe `x` an exponential search widens a window from the
/// current cursor until it must contain the first element `≥ x`, then a
/// binary search pins it down — `O(|short| · log(|long| / |short|))`.
fn gallop_intersect(short: &[ObjectId], long: &[ObjectId]) -> Vec<ObjectId> {
    let mut out = Vec::new();
    let mut lo = 0usize;
    for &x in short {
        if lo >= long.len() {
            break;
        }
        let mut width = 1usize;
        while lo + width < long.len() && long[lo + width] < x {
            width *= 2;
        }
        let end = (lo + width + 1).min(long.len());
        let idx = lo + long[lo..end].partition_point(|&v| v < x);
        if idx < long.len() && long[idx] == x {
            out.push(x);
            lo = idx + 1;
        } else {
            lo = idx;
        }
    }
    out
}

/// Whether sorted `list` contains `id`.
fn gallop_contains(list: &[ObjectId], id: ObjectId) -> bool {
    list.binary_search(&id).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(raw: &[&[Keyword]]) -> Vec<Document> {
        raw.iter().map(|ws| Document::new(ws.to_vec())).collect()
    }

    #[test]
    fn build_counts() {
        let idx = InvertedIndex::build(&docs(&[&[0, 1], &[1, 2, 3], &[0]]));
        assert_eq!(idx.input_size(), 6);
        assert_eq!(idx.num_objects(), 3);
        assert_eq!(idx.num_keywords(), 4);
        assert_eq!(idx.postings(1), &[0, 1]);
        assert_eq!(idx.postings(9), &[] as &[ObjectId]);
    }

    #[test]
    fn validate_accepts_built_and_rejects_corrupt() {
        let mut idx = InvertedIndex::build(&docs(&[&[0, 1], &[1, 2, 3], &[0]]));
        idx.validate().unwrap();
        // Break the ascending-order invariant on one list.
        idx.postings.get_mut(&1).unwrap().reverse();
        let err = idx.validate().unwrap_err();
        assert!(err.contains("not strictly ascending"), "{err}");
    }

    #[test]
    fn intersection_basic() {
        let idx = InvertedIndex::build(&docs(&[&[0, 1, 2], &[0, 2], &[1, 2], &[0, 1, 2, 3]]));
        assert_eq!(idx.intersect(&[0, 1]), vec![0, 3]);
        assert_eq!(idx.intersect(&[2]), vec![0, 1, 2, 3]);
        assert_eq!(idx.intersect(&[0, 1, 3]), vec![3]);
        assert_eq!(idx.intersect(&[0, 5]), Vec::<ObjectId>::new());
    }

    #[test]
    fn empty_keyword_list_returns_all() {
        let idx = InvertedIndex::build(&docs(&[&[0], &[1]]));
        assert_eq!(idx.intersect(&[]), vec![0, 1]);
    }

    #[test]
    fn emptiness_matches_reporting() {
        let idx = InvertedIndex::build(&docs(&[&[0, 1], &[1, 2], &[2, 0]]));
        for ks in [&[0u32, 1] as &[u32], &[0, 1, 2], &[0], &[7]] {
            assert_eq!(
                idx.intersection_is_empty(ks),
                idx.intersect(ks).is_empty(),
                "{ks:?}"
            );
        }
    }

    #[test]
    fn duplicate_query_keywords() {
        let idx = InvertedIndex::build(&docs(&[&[0, 1], &[0]]));
        assert_eq!(idx.intersect(&[0, 0, 1, 1]), vec![0]);
    }

    #[test]
    fn randomized_intersection_matches_bruteforce() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let vocab = 20u32;
        let documents: Vec<Document> = (0..200)
            .map(|_| {
                let len = rng.gen_range(1..8);
                Document::new((0..len).map(|_| rng.gen_range(0..vocab)).collect())
            })
            .collect();
        let idx = InvertedIndex::build(&documents);
        for _ in 0..200 {
            let k = rng.gen_range(1..4);
            let ks: Vec<Keyword> = (0..k).map(|_| rng.gen_range(0..vocab + 2)).collect();
            let mut expected: Vec<ObjectId> = documents
                .iter()
                .enumerate()
                .filter(|(_, d)| d.contains_all(&ks))
                .map(|(i, _)| i as ObjectId)
                .collect();
            expected.sort_unstable();
            assert_eq!(idx.intersect(&ks), expected, "keywords {ks:?}");
            assert_eq!(idx.intersection_is_empty(&ks), expected.is_empty());
        }
    }
}
