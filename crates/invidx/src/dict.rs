//! String ↔ keyword-id dictionary.
//!
//! The indexes operate on integer keywords (paper §1.1 formulates
//! documents as sets of integers). Applications with textual tags use a
//! [`Dictionary`] to intern strings into dense ids.

use std::collections::HashMap;

use crate::Keyword;

/// An interning dictionary assigning dense [`Keyword`] ids to strings.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_name: HashMap<String, Keyword>,
    by_id: Vec<String>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> Keyword {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.by_id.len() as Keyword;
        self.by_name.insert(name.to_owned(), id);
        self.by_id.push(name.to_owned());
        id
    }

    /// Interns several names at once.
    pub fn intern_all(&mut self, names: &[&str]) -> Vec<Keyword> {
        names.iter().map(|n| self.intern(n)).collect()
    }

    /// The id of `name` if already interned.
    pub fn lookup(&self, name: &str) -> Option<Keyword> {
        self.by_name.get(name).copied()
    }

    /// The name of keyword `id`, if assigned.
    pub fn name(&self, id: Keyword) -> Option<&str> {
        self.by_id.get(id as usize).map(String::as_str)
    }

    /// The number of distinct keywords interned (`W` in the paper).
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether no keyword has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("pool");
        let b = d.intern("pet-friendly");
        assert_ne!(a, b);
        assert_eq!(d.intern("pool"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn roundtrip() {
        let mut d = Dictionary::new();
        let id = d.intern("free-parking");
        assert_eq!(d.lookup("free-parking"), Some(id));
        assert_eq!(d.name(id), Some("free-parking"));
        assert_eq!(d.lookup("sauna"), None);
        assert_eq!(d.name(99), None);
    }

    #[test]
    fn intern_all_preserves_order() {
        let mut d = Dictionary::new();
        let ids = d.intern_all(&["a", "b", "a", "c"]);
        assert_eq!(ids[0], ids[2]);
        assert_eq!(d.len(), 3);
    }
}
