//! # structured-keyword-search
//!
//! Indexes for **keyword search with structured constraints**, a Rust
//! implementation of
//!
//! > Shangqi Lu and Yufei Tao. *Indexing for Keyword Search with
//! > Structured Constraints.* PODS 2023.
//!
//! Each object in a dataset is a point in `R^d` carrying a non-empty
//! *document* (a set of integer keywords). Queries combine `k`
//! keywords — "contains all of them" — with a geometric predicate:
//! a rectangle, a conjunction of linear constraints, a simplex, a
//! Euclidean ball, or nearest-neighbour prioritization. Both naive
//! strategies (evaluate the geometry then filter keywords, or intersect
//! postings lists then filter geometrically) can scan `Θ(N)` candidates
//! while reporting nothing; the indexes here answer every such query in
//! `~O(N^{1−1/k} · (1 + OUT^{1/k}))` time with (near-)linear space,
//! which is conditionally optimal.
//!
//! ## Quick start
//!
//! ```
//! use structured_keyword_search::prelude::*;
//!
//! // Hotels: (price, rating) + feature tags.
//! let mut dict = Dictionary::new();
//! let (pool, parking, pets) = (
//!     dict.intern("pool"),
//!     dict.intern("free-parking"),
//!     dict.intern("pet-friendly"),
//! );
//! let hotels = Dataset::from_parts(vec![
//!     (Point::new2(120.0, 8.5), vec![pool, parking, pets]),
//!     (Point::new2(250.0, 9.5), vec![pool, pets]),
//!     (Point::new2(150.0, 8.8), vec![pool, parking, pets]),
//! ]);
//!
//! // C1: price ∈ [100, 200] and rating ≥ 8, plus three keywords.
//! let index = OrpKwIndex::build(&hotels, 3);
//! let q = Rect::new(&[100.0, 8.0], &[200.0, 10.0]);
//! let mut hits = index.query(&q, &[pool, parking, pets]);
//! hits.sort_unstable();
//! assert_eq!(hits, vec![0, 2]);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the paper's indexes: framework, dimension reduction, one module per problem, naive baselines |
//! | [`geom`] | geometry substrate: points, rectangles, halfspaces, simplices, kd-tree |
//! | [`invidx`] | inverted-index substrate: documents, dictionary, postings |
//! | [`workload`] | seeded synthetic data and query generators |
//! | [`obs`] | observability: metrics registry, span timers, query log, Prometheus exposition |
//! | [`serve`] | concurrent serving: worker pool, sharded job queue, epoch-based snapshot rotation |
//! | [`store`] | persistence tier: `IndexBackend` trait, paged snapshot codec, in-memory and file backends |
//!
//! See `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! empirical validation of the paper's Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use skq_core as core;
pub use skq_geom as geom;
pub use skq_invidx as invidx;
pub use skq_obs as obs;
pub use skq_serve as serve;
pub use skq_store as store;
pub use skq_workload as workload;

/// The most commonly used types, re-exported flat.
///
/// Robustness types ride along: every index has a fallible
/// `try_build`/`try_query_into` surface returning
/// [`SkqError`](prelude::SkqError), and any query can run under a
/// [`QueryGuard`](prelude::QueryGuard) (deadline,
/// [`CancelToken`](prelude::CancelToken), result budget) enforced by a
/// [`GuardedSink`](prelude::GuardedSink) — truncation is reported via
/// [`TruncatedReason`](prelude::TruncatedReason) in the query stats.
pub mod prelude {
    pub use skq_core::dataset::Dataset;
    pub use skq_core::error::SkqError;
    pub use skq_core::guard::{CancelToken, GuardedSink, QueryGuard};
    pub use skq_core::ksi::KsiIndex;
    pub use skq_core::lc::LcKwIndex;
    pub use skq_core::naive::{FullScan, KeywordsFirst, StructuredFirst};
    pub use skq_core::nn_l2::L2NnIndex;
    pub use skq_core::nn_linf::LinfNnIndex;
    pub use skq_core::orp::OrpKwIndex;
    pub use skq_core::rr::{RrKwIndex, RrKwLinear};
    pub use skq_core::sink::{
        CollectSink, CountSink, DedupSink, FilterSink, LimitSink, MapSink, ResultSink, TeeSink,
    };
    pub use skq_core::sp::{SpKwIndex, SpStrategy};
    pub use skq_core::srp::SrpKwIndex;
    pub use skq_core::stats::{QueryStats, TruncatedReason};
    pub use skq_geom::{
        Ball, ConvexPolytope, Halfspace, KdTree, Point, Polygon, RangeTree2D, RankSpace, Rect,
        Region, Simplex,
    };
    pub use skq_invidx::{Dictionary, Document, InvertedIndex, Keyword, ObjectId};
    pub use skq_serve::{Pending, Reply, Request, Server, ServerConfig, SnapshotCell};
    pub use skq_store::{FileBackend, IndexBackend, MemBackend, Persist, SCHEMA_VERSION};
    pub use skq_workload::queries::QueryGen;
    pub use skq_workload::{KeywordModel, SpatialKeywordConfig, SpatialModel};
}
