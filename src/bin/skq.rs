//! `skq` — a small command-line front end for the indexes.
//!
//! Data files are semicolon-separated: one object per line, coordinate
//! columns first, then a comma-separated tag list. Example:
//!
//! ```text
//! # price; rating; tags
//! 120; 8.5; pool,free-parking,pet-friendly
//! 250; 9.5; pool,pet-friendly
//! ```
//!
//! Usage:
//!
//! ```text
//! skq demo out.csv                # write a sample dataset
//! skq stats data.csv
//! skq rect data.csv --lo 100,8 --hi 200,10 --tags pool,pet-friendly
//! skq ball data.csv --center 150,9 --radius 1.5 --tags pool,pet-friendly
//! skq nn   data.csv --at 150,9 --t 3 --tags pool,pet-friendly
//! ```
//!
//! Every query command also accepts `--stats` (print the execution
//! counters and wall time), `--metrics <path>` (write a Prometheus
//! text-format snapshot of the build/query metric series) and
//! `--trace <path>` (capture the build+query execution as a
//! chrome-trace JSON file loadable in `ui.perfetto.dev` or
//! `chrome://tracing`; spans carry the paper's execution counters as
//! arguments). `rect` and `ball` additionally accept `--count-only` (stream the hits into a
//! counter — no result set is materialized), `--limit <t>` (stop
//! after `t` hits, the paper's threshold-query primitive),
//! `--deadline-ms <ms>` (abandon the query at a wall-clock deadline,
//! keeping the partial answer) and `--max-results <m>` (a guarded
//! result budget).
//!
//! Exit codes: `0` success, `1` usage errors (unknown command, missing
//! flags), `2` a malformed flag value (e.g. a non-numeric coordinate in
//! `--lo/--hi/--center/--at`) — reported as a single line without the
//! usage dump, for scripting.

use std::process::ExitCode;
use std::time::Duration;

use structured_keyword_search::obs;
use structured_keyword_search::prelude::*;

/// Usage errors (exit 1, with the usage text) vs. malformed flag
/// values (exit 2, a single scripting-friendly line).
#[derive(Debug)]
enum CliError {
    Usage(String),
    BadArg(String),
}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError::Usage(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError::Usage(s.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::BadArg(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  skq demo <out.csv>
  skq stats <data.csv>
  skq rect <data.csv> --lo a,b,… --hi a,b,… --tags t1,t2[,…] [--count-only] [--limit t] [--deadline-ms ms] [--max-results m] [--stats] [--metrics out.prom] [--trace out.json]
  skq ball <data.csv> --center a,b,… --radius r --tags t1,t2[,…] [--count-only] [--limit t] [--deadline-ms ms] [--max-results m] [--stats] [--metrics out.prom] [--trace out.json]
  skq nn   <data.csv> --at a,b,… --t N --tags t1,t2[,…] [--stats] [--metrics out.prom] [--trace out.json]
  skq save <data.csv> <snapshot.skq> [--k-max K]
  skq load <snapshot.skq> [--lo a,b,… --hi a,b,… --tag-ids i,j[,…]]
  skq recover <data-dir> [--dim D] [--k K]";

fn run(args: &[String]) -> Result<(), CliError> {
    let cmd = args.first().ok_or("missing command")?.as_str();
    match cmd {
        "demo" => {
            let path = args.get(1).ok_or("demo needs an output path")?;
            std::fs::write(path, demo_csv()).map_err(|e| e.to_string())?;
            println!("wrote sample dataset to {path}");
            Ok(())
        }
        "stats" => {
            let path = args.get(1).ok_or("stats needs a data file")?;
            let loaded = load(path)?;
            println!(
                "{} objects, d = {}, N = {}, {} distinct tags",
                loaded.dataset.len(),
                loaded.dataset.dim(),
                loaded.dataset.input_size(),
                loaded.dict.len()
            );
            Ok(())
        }
        "rect" | "ball" | "nn" => {
            let path = args.get(1).ok_or("missing data file")?;
            let loaded = load(path)?;
            let opts = parse_flags(&args[2..])?;
            let tags = opts.require("tags")?;
            let tag_ids = resolve_tags(&loaded, tags)?;
            let k = tag_ids.len();
            if k < 2 {
                return Err("need at least 2 distinct tags".into());
            }
            let dim = loaded.dataset.dim();
            let count_only = opts.has("count-only");
            let limit: usize = match opts.get("limit") {
                Some(v) => v.parse().map_err(|_| {
                    CliError::BadArg(format!("--limit must be an integer, got {v:?}"))
                })?,
                None => usize::MAX,
            };
            let guard = build_guard(&opts)?;
            let guarded = opts.has("deadline-ms") || opts.has("max-results");
            if cmd == "nn" && (count_only || limit != usize::MAX || guarded) {
                return Err(
                    "--count-only/--limit/--deadline-ms/--max-results apply to rect and ball queries"
                        .into(),
                );
            }
            if opts.has("trace") {
                obs::trace::enable();
            }
            // Root span per command. The index-build span and the
            // execution counters recorded by `telemetry::record_query`
            // nest under it in the exported trace. One literal
            // `Span::enter` per command keeps the span names auditable
            // against DESIGN.md §13 (lint rule L12).
            let root_span = match cmd {
                "rect" => obs::Span::enter("cli.rect"),
                "ball" => obs::Span::enter("cli.ball"),
                _ => obs::Span::enter("cli.nn"),
            };
            let started = std::time::Instant::now();
            // `hits` is None under --count-only: the matches stream into
            // a counter and no result vector exists to print.
            let (hits, stats): (Option<Vec<u32>>, QueryStats) = match cmd {
                "rect" => {
                    let lo = parse_coords_dim(opts.require("lo")?, dim, "lo")
                        .map_err(CliError::BadArg)?;
                    let hi = parse_coords_dim(opts.require("hi")?, dim, "hi")
                        .map_err(CliError::BadArg)?;
                    if lo.iter().zip(&hi).any(|(a, b)| a > b) {
                        return Err(CliError::BadArg(
                            "--lo must be coordinate-wise at most --hi".to_string(),
                        ));
                    }
                    let q = Rect::new(&lo, &hi);
                    let index = OrpKwIndex::build(&loaded.dataset, k);
                    let mut stats = QueryStats::new();
                    if count_only {
                        let mut sink =
                            GuardedSink::new(LimitSink::new(CountSink::new(), limit), &guard);
                        let _ = index.query_sink(&q, &tag_ids, &mut sink, &mut stats);
                        finish_guarded(&mut stats, &sink);
                        (None, stats)
                    } else {
                        let mut sink = GuardedSink::new(LimitSink::new(Vec::new(), limit), &guard);
                        let _ = index.query_sink(&q, &tag_ids, &mut sink, &mut stats);
                        finish_guarded(&mut stats, &sink);
                        (Some(sink.into_inner().into_inner()), stats)
                    }
                }
                "ball" => {
                    let center = Point::new(
                        &parse_coords_dim(opts.require("center")?, dim, "center")
                            .map_err(CliError::BadArg)?,
                    );
                    let radius: f64 = opts
                        .require("radius")?
                        .parse()
                        .map_err(|_| CliError::BadArg("--radius must be a number".to_string()))?;
                    if !radius.is_finite() || radius < 0.0 {
                        return Err(CliError::BadArg(
                            "--radius must be finite and non-negative".to_string(),
                        ));
                    }
                    let radius_sq = radius * radius;
                    let index = SrpKwIndex::build(&loaded.dataset, k);
                    let mut stats = QueryStats::new();
                    if count_only {
                        let mut sink =
                            GuardedSink::new(LimitSink::new(CountSink::new(), limit), &guard);
                        let _ = index
                            .query_sq_sink(&center, radius_sq, &tag_ids, &mut sink, &mut stats);
                        finish_guarded(&mut stats, &sink);
                        (None, stats)
                    } else {
                        let mut sink = GuardedSink::new(LimitSink::new(Vec::new(), limit), &guard);
                        let _ = index
                            .query_sq_sink(&center, radius_sq, &tag_ids, &mut sink, &mut stats);
                        finish_guarded(&mut stats, &sink);
                        (Some(sink.into_inner().into_inner()), stats)
                    }
                }
                _ => {
                    let at = Point::new(
                        &parse_coords_dim(opts.require("at")?, dim, "at")
                            .map_err(CliError::BadArg)?,
                    );
                    let t: usize = opts
                        .require("t")?
                        .parse()
                        .map_err(|_| CliError::BadArg("--t must be an integer".to_string()))?;
                    let index = LinfNnIndex::build(&loaded.dataset, k);
                    let (hits, stats) = index.query_with_stats(&at, t, &tag_ids);
                    (Some(hits), stats)
                }
            };
            let elapsed = started.elapsed();
            let truncation_note = match stats.truncated_reason {
                Some(TruncatedReason::DeadlineExceeded) => " (stopped: deadline exceeded)",
                Some(TruncatedReason::Cancelled) => " (stopped: cancelled)",
                Some(TruncatedReason::Limit) => " (stopped at --max-results)",
                None if stats.truncated => " (stopped at --limit)",
                None => "",
            };
            match hits {
                None => println!("{} matches{truncation_note}", stats.emitted),
                Some(mut hits) => {
                    hits.sort_unstable();
                    println!("{} matches{truncation_note}:", hits.len());
                    for &id in &hits {
                        let p = loaded.dataset.point(id as usize);
                        let tags: Vec<&str> = loaded
                            .dataset
                            .doc(id as usize)
                            .keywords()
                            .iter()
                            .filter_map(|&w| loaded.dict.name(w))
                            .collect();
                        println!("  #{id}: {:?} {}", p.coords(), tags.join(","));
                    }
                }
            }
            if opts.has("stats") {
                println!();
                println!("query stats: {stats}");
                println!(
                    "build+query wall time: {:.3} ms",
                    elapsed.as_secs_f64() * 1e3
                );
            }
            skq_core::telemetry::record_query(
                match cmd {
                    "rect" => "cli_rect",
                    "ball" => "cli_ball",
                    _ => "cli_nn",
                },
                k,
                &stats,
                elapsed,
            );
            // Closing the root span after `record_query` keeps it the
            // innermost open span while the counters attach to it.
            drop(root_span);
            if let Some(out) = opts.get("trace") {
                obs::trace::disable();
                write_creating_dirs(out, &obs::trace::export_chrome()).map_err(CliError::BadArg)?;
                println!(
                    "wrote query trace to {out} ({} events — load in ui.perfetto.dev or chrome://tracing)",
                    obs::trace::event_count()
                );
            }
            if let Some(out) = opts.get("metrics") {
                write_creating_dirs(out, &obs::global().render_prometheus())
                    .map_err(CliError::BadArg)?;
                println!("wrote metrics snapshot to {out}");
            }
            Ok(())
        }
        "save" => {
            let data = args.get(1).ok_or("save needs a data file")?;
            let out = args.get(2).ok_or("save needs a snapshot path")?;
            let opts = parse_flags(&args[3..])?;
            let k_max: usize = match opts.get("k-max") {
                Some(v) => v.parse().map_err(|_| {
                    CliError::BadArg(format!("--k-max must be an integer, got {v:?}"))
                })?,
                None => 3,
            };
            let loaded = load(data)?;
            let suite = skq_core::suite::OrpKwSuite::try_build(&loaded.dataset, k_max)
                .map_err(|e| CliError::BadArg(e.to_string()))?;
            let (backend, name) = snapshot_backend(out)?;
            let written = backend
                .save(&name, &suite)
                .map_err(|e| CliError::BadArg(e.to_string()))?;
            println!(
                "saved {} objects (k_max = {k_max}, {written} bytes) to {out}",
                loaded.dataset.len()
            );
            Ok(())
        }
        "load" => {
            let snap = args.get(1).ok_or("load needs a snapshot path")?;
            let opts = parse_flags(&args[2..])?;
            let (backend, name) = snapshot_backend(snap)?;
            let started = std::time::Instant::now();
            let suite: skq_core::suite::OrpKwSuite = backend
                .load(&name)
                .map_err(|e| CliError::BadArg(e.to_string()))?;
            let load_micros = started.elapsed().as_micros();
            println!(
                "loaded snapshot {snap}: dim = {}, k_max = {} ({load_micros} µs, no rebuild)",
                suite.dim(),
                suite.k_max()
            );
            if let Some(ids) = opts.get("tag-ids") {
                let dim = suite.dim();
                let lo =
                    parse_coords_dim(opts.require("lo")?, dim, "lo").map_err(CliError::BadArg)?;
                let hi =
                    parse_coords_dim(opts.require("hi")?, dim, "hi").map_err(CliError::BadArg)?;
                if lo.iter().zip(&hi).any(|(a, b)| a > b) {
                    return Err(CliError::BadArg(
                        "--lo must be coordinate-wise at most --hi".to_string(),
                    ));
                }
                let tag_ids: Vec<Keyword> = ids
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<Keyword>()
                            .map_err(|_| CliError::BadArg(format!("bad tag id {t:?}")))
                    })
                    .collect::<Result<_, _>>()?;
                let mut hits = suite.query(&Rect::new(&lo, &hi), &tag_ids);
                hits.sort_unstable();
                println!("{} matches: {hits:?}", hits.len());
            }
            Ok(())
        }
        "recover" => {
            let dir = args.get(1).ok_or("recover needs a data directory")?;
            let opts = parse_flags(&args[2..])?;
            let dim: usize = match opts.get("dim") {
                Some(v) => v.parse().map_err(|_| {
                    CliError::BadArg(format!("--dim must be an integer, got {v:?}"))
                })?,
                None => 2,
            };
            let k: usize = match opts.get("k") {
                Some(v) => v
                    .parse()
                    .map_err(|_| CliError::BadArg(format!("--k must be an integer, got {v:?}")))?,
                None => 2,
            };
            let started = std::time::Instant::now();
            let (durable, report) = skq_store::DurableDynamic::open(
                std::path::Path::new(dir),
                dim,
                k,
                skq_store::DurabilityConfig::default(),
            )
            .map_err(|e| CliError::BadArg(e.to_string()))?;
            println!(
                "recovered {dir} in {} µs: {} live objects",
                started.elapsed().as_micros(),
                durable.index().len()
            );
            println!(
                "  checkpoint lsn {}, last lsn {}, {} replayed, {} skipped{}{}",
                report.checkpoint_lsn,
                report.last_lsn,
                report.replayed,
                report.skipped,
                if report.torn_tail {
                    ", torn tail truncated"
                } else {
                    ""
                },
                if report.checkpoints_discarded > 0 {
                    ", corrupt checkpoint(s) discarded"
                } else {
                    ""
                },
            );
            Ok(())
        }
        other => Err(format!("unknown command {other}").into()),
    }
}

/// Splits a `dir/name.skq` path into a [`FileBackend`] over the
/// directory and the snapshot name the backend expects.
fn snapshot_backend(path: &str) -> Result<(FileBackend, String), CliError> {
    let p = std::path::Path::new(path);
    let name = p
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(|n| n.strip_suffix(".skq"))
        .ok_or_else(|| {
            CliError::BadArg(format!("snapshot path {path:?} must end in <name>.skq"))
        })?;
    let dir = match p.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let backend = FileBackend::new(dir).map_err(|e| CliError::BadArg(e.to_string()))?;
    Ok((backend, name.to_string()))
}

struct Loaded {
    dataset: Dataset,
    dict: Dictionary,
}

/// Writes an output artifact (`--metrics`, `--trace`), creating any
/// missing parent directories first. Failures come back as a single
/// scripting-friendly line (exit 2), never a panic or usage dump.
fn write_creating_dirs(path: &str, contents: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(p, contents).map_err(|e| format!("{path}: {e}"))
}

fn load(path: &str) -> Result<Loaded, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_csv(&text)
}

/// Parses the semicolon data format. Lines starting with `#` and blank
/// lines are skipped.
fn parse_csv(text: &str) -> Result<Loaded, String> {
    let mut dict = Dictionary::new();
    let mut parts: Vec<(Point, Vec<Keyword>)> = Vec::new();
    let mut dim: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split(';').map(str::trim).collect();
        if cols.len() < 2 {
            return Err(format!("line {}: need coordinates and tags", lineno + 1));
        }
        let (coord_cols, tag_col) = cols.split_at(cols.len() - 1);
        let coords: Vec<f64> = coord_cols
            .iter()
            .map(|c| {
                c.parse::<f64>()
                    .map_err(|_| format!("line {}: bad coordinate {c:?}", lineno + 1))
            })
            .collect::<Result<_, _>>()?;
        match dim {
            None => dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(format!("line {}: inconsistent dimensions", lineno + 1))
            }
            _ => {}
        }
        let tags: Vec<Keyword> = tag_col[0]
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| dict.intern(t))
            .collect();
        if tags.is_empty() {
            return Err(format!(
                "line {}: objects need at least one tag",
                lineno + 1
            ));
        }
        parts.push((Point::new(&coords), tags));
    }
    if parts.is_empty() {
        return Err("no objects in file".into());
    }
    Ok(Loaded {
        dataset: Dataset::from_parts(parts),
        dict,
    })
}

fn parse_coords(s: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .map(|c| {
            c.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad coordinate {c:?}"))
        })
        .collect()
}

/// Parses a coordinate flag and validates it against the dataset
/// dimensionality (a mismatched count would otherwise panic deep inside
/// the index with an unhelpful message).
fn parse_coords_dim(s: &str, dim: usize, flag: &str) -> Result<Vec<f64>, String> {
    let coords = parse_coords(s)?;
    if coords.len() != dim {
        return Err(format!(
            "--{flag} has {} coordinate(s) but the dataset is {dim}-dimensional",
            coords.len()
        ));
    }
    Ok(coords)
}

/// Builds the query guard from `--deadline-ms` / `--max-results`.
fn build_guard(opts: &Flags) -> Result<QueryGuard, CliError> {
    let mut guard = QueryGuard::new();
    if let Some(v) = opts.get("deadline-ms") {
        let ms: u64 = v.parse().map_err(|_| {
            CliError::BadArg(format!("--deadline-ms must be an integer, got {v:?}"))
        })?;
        guard = guard.with_deadline(Duration::from_millis(ms));
    }
    if let Some(v) = opts.get("max-results") {
        let m: usize = v.parse().map_err(|_| {
            CliError::BadArg(format!("--max-results must be an integer, got {v:?}"))
        })?;
        guard = guard.with_max_results(m);
    }
    Ok(guard)
}

/// Folds a guarded sink's accounting into the query stats.
fn finish_guarded<S: ResultSink>(stats: &mut QueryStats, sink: &GuardedSink<S>) {
    stats.emitted += sink.emitted();
    stats.truncated |= sink.truncated();
    stats.truncated_reason = stats.truncated_reason.or(sink.truncated_reason());
}

fn resolve_tags(loaded: &Loaded, tags: &str) -> Result<Vec<Keyword>, String> {
    let mut ids = Vec::new();
    for t in tags.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let id = loaded
            .dict
            .lookup(t)
            .ok_or_else(|| format!("tag {t:?} does not occur in the dataset"))?;
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    Ok(ids)
}

/// Tiny flag parser: `--name value` pairs plus bare boolean switches.
struct Flags(Vec<(String, String)>);

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["stats", "count-only"];

impl Flags {
    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let name = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {a:?}"))?;
        if BOOL_FLAGS.contains(&name) {
            out.push((name.to_string(), String::new()));
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        out.push((name.to_string(), value.clone()));
    }
    Ok(Flags(out))
}

fn demo_csv() -> String {
    "# price; rating; tags\n\
     120; 8.5; pool,free-parking,pet-friendly\n\
     250; 9.5; pool,pet-friendly,spa\n\
     150; 8.8; pool,free-parking,pet-friendly,gym\n\
     60;  6.9; free-parking\n\
     180; 7.5; pool,free-parking,pet-friendly\n\
     95;  9.1; free-parking,pet-friendly\n\
     199; 8.0; pool,free-parking,pet-friendly,spa\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_demo_csv() {
        let loaded = parse_csv(&demo_csv()).unwrap();
        assert_eq!(loaded.dataset.len(), 7);
        assert_eq!(loaded.dataset.dim(), 2);
        assert!(loaded.dict.lookup("pool").is_some());
        assert!(loaded.dict.lookup("sauna").is_none());
    }

    #[test]
    fn parse_rejects_bad_lines() {
        assert!(parse_csv("just-one-column\n").is_err());
        assert!(parse_csv("nope; a,b\n").is_err()); // bad coordinate
        assert!(parse_csv("1.0; 2.0; a\n3.0; b\n").is_err()); // inconsistent dims
        assert!(parse_csv("1.0; 2.0; \n").is_err()); // empty tags
        assert!(parse_csv("").is_err()); // empty file
    }

    #[test]
    fn last_column_is_always_tags() {
        // A numeric last column is interpreted as a tag, by design.
        let loaded = parse_csv("1.0; 2.0\n").unwrap();
        assert_eq!(loaded.dataset.dim(), 1);
        assert!(loaded.dict.lookup("2.0").is_some());
    }

    #[test]
    fn flags_roundtrip() {
        let args: Vec<String> = ["--lo", "1,2", "--hi", "3,4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.require("lo").unwrap(), "1,2");
        assert!(f.require("tags").is_err());
        assert!(parse_flags(&["oops".to_string()]).is_err());
    }

    #[test]
    fn stats_flag_takes_no_value() {
        let args: Vec<String> = ["--stats", "--metrics", "out.prom", "--tags", "a,b"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert!(f.has("stats"));
        assert_eq!(f.get("metrics"), Some("out.prom"));
        assert_eq!(f.require("tags").unwrap(), "a,b");
        assert!(!f.has("lo"));
    }

    #[test]
    fn coordinate_count_is_validated() {
        assert_eq!(parse_coords_dim("1,2", 2, "lo").unwrap(), vec![1.0, 2.0]);
        let err = parse_coords_dim("1,2,3", 2, "lo").unwrap_err();
        assert!(err.contains("--lo has 3 coordinate(s)"), "{err}");
        assert!(err.contains("2-dimensional"), "{err}");
        assert!(parse_coords_dim("1,x", 2, "hi").is_err());
    }

    #[test]
    fn coords_parse() {
        assert_eq!(parse_coords("1, 2.5,3").unwrap(), vec![1.0, 2.5, 3.0]);
        assert!(parse_coords("1,x").is_err());
    }

    #[test]
    fn count_only_flag_takes_no_value() {
        let args: Vec<String> = ["--count-only", "--limit", "5", "--tags", "a,b"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert!(f.has("count-only"));
        assert_eq!(f.get("limit"), Some("5"));
    }

    #[test]
    fn end_to_end_count_only() {
        let loaded = parse_csv(&demo_csv()).unwrap();
        let tags = resolve_tags(&loaded, "pool,pet-friendly").unwrap();
        let index = OrpKwIndex::build(&loaded.dataset, tags.len());
        let q = Rect::new(&[100.0, 8.0], &[200.0, 10.0]);
        let mut sink = CountSink::new();
        let mut stats = QueryStats::new();
        let _ = index.query_sink(&q, &tags, &mut sink, &mut stats);
        assert_eq!(sink.count(), 3);
        assert_eq!(stats.reported, 3);
    }

    fn string_args(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn malformed_flag_values_are_bad_args() {
        let dir = std::env::temp_dir().join("skq_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("demo.csv");
        std::fs::write(&data, demo_csv()).unwrap();
        let d = data.to_str().unwrap();
        // A non-numeric coordinate in --lo is a malformed value (exit 2).
        let bad = [
            vec![
                "rect", d, "--lo", "abc,8", "--hi", "200,10", "--tags", "pool,spa",
            ],
            vec![
                "rect", d, "--lo", "100,8,9", "--hi", "200,10", "--tags", "pool,spa",
            ],
            vec![
                "rect", d, "--lo", "300,8", "--hi", "200,10", "--tags", "pool,spa",
            ],
            vec![
                "ball", d, "--center", "x,9", "--radius", "1", "--tags", "pool,spa",
            ],
            vec![
                "ball", d, "--center", "150,9", "--radius", "-1", "--tags", "pool,spa",
            ],
            vec!["nn", d, "--at", "oops", "--t", "3", "--tags", "pool,spa"],
            vec![
                "rect",
                d,
                "--lo",
                "1,8",
                "--hi",
                "200,10",
                "--tags",
                "pool,spa",
                "--deadline-ms",
                "soon",
            ],
            vec![
                "rect",
                d,
                "--lo",
                "1,8",
                "--hi",
                "200,10",
                "--tags",
                "pool,spa",
                "--max-results",
                "-3",
            ],
        ];
        for args in bad {
            assert!(
                matches!(run(&string_args(&args)), Err(CliError::BadArg(_))),
                "{args:?}"
            );
        }
        // Unknown commands and missing flags remain usage errors (exit 1).
        assert!(matches!(
            run(&string_args(&["bogus"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&string_args(&["rect", d, "--tags", "pool,spa"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn metrics_write_failure_is_bad_arg() {
        let dir = std::env::temp_dir().join("skq_cli_metrics_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("demo.csv");
        std::fs::write(&data, demo_csv()).unwrap();
        let d = data.to_str().unwrap();
        // The data file itself as a parent directory cannot be created:
        // the failure must surface as a one-line exit-2 error.
        let bad_out = format!("{d}/nested/out.prom");
        let args = string_args(&[
            "rect",
            d,
            "--lo",
            "100,8",
            "--hi",
            "200,10",
            "--tags",
            "pool,spa",
            "--metrics",
            &bad_out,
        ]);
        assert!(matches!(run(&args), Err(CliError::BadArg(_))));
        // A missing (but creatable) parent directory is created.
        let ok_out = dir.join("fresh/subdir/out.prom");
        let _ = std::fs::remove_dir_all(dir.join("fresh"));
        let args = string_args(&[
            "rect",
            d,
            "--lo",
            "100,8",
            "--hi",
            "200,10",
            "--tags",
            "pool,spa",
            "--metrics",
            ok_out.to_str().unwrap(),
        ]);
        run(&args).unwrap();
        let snapshot = std::fs::read_to_string(&ok_out).unwrap();
        assert!(snapshot.contains("skq_query_total"));
    }

    #[test]
    fn guard_flags_wire_through() {
        let loaded = parse_csv(&demo_csv()).unwrap();
        let tags = resolve_tags(&loaded, "pool,pet-friendly").unwrap();
        let index = OrpKwIndex::build(&loaded.dataset, tags.len());
        let q = Rect::new(&[0.0, 0.0], &[300.0, 10.0]);
        let opts = parse_flags(&string_args(&["--max-results", "2"])).unwrap();
        let guard = build_guard(&opts).unwrap();
        let mut stats = QueryStats::new();
        let mut sink = GuardedSink::new(LimitSink::new(Vec::new(), usize::MAX), &guard);
        let _ = index.query_sink(&q, &tags, &mut sink, &mut stats);
        finish_guarded(&mut stats, &sink);
        assert_eq!(sink.into_inner().into_inner().len(), 2);
        assert_eq!(stats.truncated_reason, Some(TruncatedReason::Limit));
    }

    #[test]
    fn end_to_end_rect_query() {
        let loaded = parse_csv(&demo_csv()).unwrap();
        let tags = resolve_tags(&loaded, "pool,pet-friendly").unwrap();
        let index = OrpKwIndex::build(&loaded.dataset, tags.len());
        let q = Rect::new(&[100.0, 8.0], &[200.0, 10.0]);
        let mut hits = index.query(&q, &tags);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2, 6]);
    }
}
